"""Algorithm 4 — ``DPTreeVSE``: exact dynamic programming for forest
cases with pivot tuples (paper Section IV.E).

Tractable class: every connected component of the data dual graph admits
a **pivot tuple** — a fact such that, rooting the component there, every
view tuple's witness is a *vertical segment*: a contiguous run of facts
along one root-to-leaf path (see
:class:`repro.hypergraph.datadual.DataDualGraph`).

Under that layout a deleted fact ``x`` eliminates exactly the segments
whose path contains ``x``, i.e. segments ``r`` with
``depth(top_r) <= depth(x)`` and ``x`` an ancestor-or-self of
``bottom_r``.  Attributing each segment to its *bottom* fact gives a
clean DP over the tree in post-order with one state: the depth of the
nearest deleted ancestor (the paper's ``T(t)`` table — "we do not
consider deleting a subset of tuples on the path, because it would be
equivalent to deleting the tuple of this subset closest to ``t``").

The same DP solves the **standard** problem (uneliminated ΔV = ∞), the
**weighted** problem, and the **balanced** problem (uneliminated ΔV =
``delta_penalty``), all exactly — experiment E7 checks optimality
against brute force.
"""

from __future__ import annotations

from repro.errors import NotKeyPreservingError, StructureError
from repro.hypergraph.datadual import RootedComponent
from repro.relational.tuples import Fact
from repro.relational.views import ViewTuple
from repro.core.problem import DeletionPropagationProblem
from repro.core.session import SolveSession
from repro.core.solution import Propagation

__all__ = ["solve_dp_tree", "applies_to"]

_NO_ANCESTOR = -1


def applies_to(problem: DeletionPropagationProblem) -> bool:
    """Does the instance fall into Algorithm 4's tractable class?

    Answered by the session's structure profile, so repeated probes (and
    the dispatch that follows) share one pivot search.
    """
    return SolveSession.of(problem).profile.dp_tree_applies


def _rooted_components(session: SolveSession) -> list[RootedComponent]:
    profile = session.profile
    if not profile.key_preserving:
        raise NotKeyPreservingError("DPTreeVSE requires key-preserving queries")
    if not profile.forest_case:
        raise StructureError("DPTreeVSE requires the forest case")
    return session.rooted_components()


def solve_dp_tree(problem: DeletionPropagationProblem) -> Propagation:
    """Exact optimum for pivot-forest instances (standard, weighted, or
    balanced).  Raises :class:`StructureError` outside the class."""
    session = SolveSession.of(problem)
    balanced = session.profile.balanced
    penalty = problem.delta_penalty if balanced else float("inf")
    delta = frozenset(problem.deleted_view_tuples())

    deleted: set[Fact] = set()
    for component in _rooted_components(session):
        deleted.update(
            _solve_component(problem, component, delta, penalty)
        )
    return Propagation(problem, deleted, method="dp-tree")


def _solve_component(
    problem: DeletionPropagationProblem,
    component: RootedComponent,
    delta: frozenset[ViewTuple],
    penalty: float,
) -> set[Fact]:
    depth = component.depth
    # Segments indexed by their bottom fact.
    by_bottom: dict[Fact, list] = {}
    for segment in component.segments:
        by_bottom.setdefault(segment.bottom, []).append(segment)

    def local_cost(fact: Fact, nearest_deleted_depth: int) -> float:
        """Cost of the segments bottoming at ``fact`` given the nearest
        deleted ancestor-or-self depth (``_NO_ANCESTOR`` = none)."""
        cost = 0.0
        for segment in by_bottom.get(fact, ()):
            killed = (
                nearest_deleted_depth != _NO_ANCESTOR
                and nearest_deleted_depth >= depth[segment.top]
            )
            if segment.view_tuple in delta:
                if not killed:
                    cost += penalty
            elif killed:
                cost += problem.weight(segment.view_tuple)
        return cost

    # f[fact][d] = min cost of the subtree of `fact` when the nearest
    # deleted strict ancestor has depth d (d = _NO_ANCESTOR when none).
    # Only depths up to depth[fact]-1 (plus _NO_ANCESTOR) are reachable.
    f: dict[Fact, dict[int, float]] = {}
    choice: dict[Fact, dict[int, bool]] = {}  # True = delete fact

    for fact in component.postorder():
        f[fact] = {}
        choice[fact] = {}
        states = [_NO_ANCESTOR] + list(range(depth[fact]))
        for state in states:
            # Option A: keep the fact.
            keep = local_cost(fact, state)
            for child in component.children.get(fact, ()):
                keep += f[child][state]
            # Option B: delete the fact (nearest deleted becomes depth[fact]).
            cut = local_cost(fact, depth[fact])
            for child in component.children.get(fact, ()):
                cut += f[child][depth[fact]]
            if cut < keep:
                f[fact][state] = cut
                choice[fact][state] = True
            else:
                f[fact][state] = keep
                choice[fact][state] = False

    root = component.pivot
    if f[root][_NO_ANCESTOR] == float("inf"):
        raise StructureError("DP found no feasible labeling")  # unreachable

    # Reconstruct decisions top-down.
    deleted: set[Fact] = set()
    stack: list[tuple[Fact, int]] = [(root, _NO_ANCESTOR)]
    while stack:
        fact, state = stack.pop()
        if choice[fact][state]:
            deleted.add(fact)
            child_state = depth[fact]
        else:
            child_state = state
        for child in component.children.get(fact, ()):
            stack.append((child, child_state))
    return deleted
