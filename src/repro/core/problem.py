"""Problem definitions (paper Section II.C and Section III).

:class:`DeletionPropagationProblem` packages a source instance ``D``, a
set of conjunctive queries ``Q``, the materialized views ``V`` and the
requested deletions ``ΔV``, plus optional per-view-tuple weights (the
paper's weighted variant).  It precomputes the witness structure every
algorithm consumes:

* ``witnesses(vt)`` — all witnesses of a view tuple; exactly one for
  key-preserving queries.
* ``dependents(fact)`` — the view tuples having some witness through the
  fact (for key-preserving queries: exactly the view tuples eliminated by
  deleting it).
* ``candidate_facts()`` — the facts occurring in witnesses of ΔV tuples;
  a minimum solution never deletes anything else, so every solver
  restricts its search to this set.

:class:`BalancedDeletionPropagationProblem` is the balanced variant of
Section III: eliminating all of ΔV becomes optional, and the objective
charges one unit per ΔV tuple left standing plus the (weighted)
side-effect.  (The paper's displayed balanced objective literally reads
``Σ|Vi − Qi(D\\ΔD)| + Σ|Vi\\ΔVi − Qi(D\\ΔD)|``, which double-charges
side-effect and rewards keeping ΔV; its reduction target — positive-
negative partial set cover, cost = uncovered positives + covered
negatives — fixes the intended semantics, and that is what we implement:
``cost = |ΔV not eliminated| + w(preserved eliminated)``.)
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Mapping, Sequence

from repro.errors import ProblemError
from repro.relational.cq import ConjunctiveQuery
from repro.relational.instance import Instance
from repro.relational.tuples import Fact
from repro.relational.views import Deletion, View, ViewSet, ViewTuple

__all__ = ["DeletionPropagationProblem", "BalancedDeletionPropagationProblem"]


class DeletionPropagationProblem:
    """The multi-view view-side-effect deletion propagation problem.

    Parameters
    ----------
    instance:
        The source database ``D``.
    queries:
        The queries ``Q = {Q1..Qm}``; views are materialized on
        construction.
    deletions:
        ``ΔV`` as a mapping of view (= query) name to value tuples.
    weights:
        Optional weights on *preserved* view tuples — the user preference
        of the weighted variant (Section IV).  Missing entries default to
        1.0.  Keys are :class:`ViewTuple` or ``(view_name, values)``.
    """

    def __init__(
        self,
        instance: Instance,
        queries: Sequence[ConjunctiveQuery],
        deletions: Mapping[str, Iterable[tuple]],
        weights: Mapping[ViewTuple | tuple, float] | None = None,
    ):
        if not queries:
            raise ProblemError("at least one query is required")
        names = [q.name for q in queries]
        if len(set(names)) != len(names):
            raise ProblemError(f"duplicate query names in {names}")
        self.instance = instance
        self.queries: tuple[ConjunctiveQuery, ...] = tuple(queries)
        self.views = ViewSet.materialize(queries, instance)
        self.deletion = Deletion(self.views, deletions)
        self._weights: dict[ViewTuple, float] = {}
        for key, value in (weights or {}).items():
            vt = key if isinstance(key, ViewTuple) else ViewTuple(key[0], key[1])
            if value < 0:
                raise ProblemError(f"negative weight {value} for {vt!r}")
            self._weights[vt] = float(value)

    # ------------------------------------------------------------------
    # Paper notation (Table I)
    # ------------------------------------------------------------------

    @property
    def norm_v(self) -> int:
        """``‖V‖`` — total number of view tuples."""
        return self.views.total_size()

    @property
    def norm_delta_v(self) -> int:
        """``‖ΔV‖`` — total number of deletions requested."""
        return self.deletion.total_size()

    @property
    def max_arity(self) -> int:
        """``l`` — maximum ``arity(Q)`` over the queries."""
        return self.views.max_arity()

    # ------------------------------------------------------------------
    # View tuples
    # ------------------------------------------------------------------

    def deleted_view_tuples(self) -> list[ViewTuple]:
        """The ΔV tuples."""
        return self.deletion.deleted_view_tuples()

    def preserved_view_tuples(self) -> list[ViewTuple]:
        """``R`` — the view tuples that should survive."""
        return self.deletion.preserved_view_tuples()

    def all_view_tuples(self) -> list[ViewTuple]:
        return self.views.all_view_tuples()

    def weight(self, vt: ViewTuple) -> float:
        """Weight of a view tuple (defaults to 1.0)."""
        return self._weights.get(vt, 1.0)

    def view(self, name: str) -> View:
        return self.views.view(name)

    # ------------------------------------------------------------------
    # Witness structure
    # ------------------------------------------------------------------

    def witnesses(self, vt: ViewTuple) -> list[frozenset[Fact]]:
        """All witnesses of ``vt``; eliminating ``vt`` requires hitting
        every one of them."""
        return self.views.view(vt.view).witnesses_of(vt.values)

    def witness(self, vt: ViewTuple) -> frozenset[Fact]:
        """The unique witness (key-preserving queries only)."""
        return self.views.view(vt.view).witness_of(vt.values)

    @cached_property
    def _dependents(self) -> dict[Fact, frozenset[ViewTuple]]:
        index: dict[Fact, set[ViewTuple]] = {}
        for vt in self.all_view_tuples():
            for witness in self.witnesses(vt):
                for fact in witness:
                    index.setdefault(fact, set()).add(vt)
        return {fact: frozenset(vts) for fact, vts in index.items()}

    def dependents(self, fact: Fact) -> frozenset[ViewTuple]:
        """View tuples with some witness through ``fact``.  For
        key-preserving queries these are exactly the view tuples
        eliminated when ``fact`` is deleted."""
        return self._dependents.get(fact, frozenset())

    @cached_property
    def _candidate_facts(self) -> tuple[Fact, ...]:
        facts: set[Fact] = set()
        for vt in self.deleted_view_tuples():
            for witness in self.witnesses(vt):
                facts.update(witness)
        return tuple(sorted(facts))

    def candidate_facts(self) -> tuple[Fact, ...]:
        """Facts occurring in some witness of some ΔV tuple — the only
        facts any minimal solution deletes."""
        return self._candidate_facts

    def with_deletions(
        self, deletions: Mapping[str, Iterable[tuple]]
    ) -> "DeletionPropagationProblem":
        """A sibling problem over the same instance/queries with a
        different ΔV.

        The materialized views, weights, and (when already computed) the
        fact → dependents index are *shared* with ``self`` — only the
        :class:`~repro.relational.views.Deletion` is rebuilt, so binding
        a new request against a compiled instance costs O(‖ΔV‖) instead
        of re-materializing every view.  This is the worker-side hot
        path of :func:`repro.core.portfolio.run_delta_batch`.
        """
        clone = object.__new__(type(self))
        clone.instance = self.instance
        clone.queries = self.queries
        clone.views = self.views
        clone.deletion = Deletion(self.views, deletions)
        clone._weights = dict(self._weights)
        if isinstance(self, BalancedDeletionPropagationProblem):
            clone.delta_penalty = self.delta_penalty
        # The dependents index is ΔV-independent; reuse it when built.
        # (candidate_facts depends on ΔV and must not be copied.)
        if "_dependents" in self.__dict__:
            clone.__dict__["_dependents"] = self.__dict__["_dependents"]
        # A compiled witness arena carries over via an O(‖V‖ + ‖ΔV‖)
        # rebind of its ΔV slices — never a full recompile.
        arena = getattr(self, "_compiled_arena", None)
        if arena is not None and arena.problem is self:
            clone._compiled_arena = arena.rebound(clone)
        # Point the clone at the base's session (created lazily here if
        # need be — construction computes nothing) so SolveSession.of
        # rebinds and every sibling shares one set of ΔV-independent
        # artifacts instead of recomputing per variant.
        from repro.core.session import SolveSession

        clone._session_base = SolveSession.of(self)
        return clone

    @classmethod
    def from_materialized(
        cls,
        instance: Instance,
        queries: Sequence[ConjunctiveQuery],
        views: ViewSet,
        deletions: Mapping[str, Iterable[tuple]],
        weights: Mapping[ViewTuple | tuple, float] | None = None,
        delta_penalty: float = 1.0,
    ) -> "DeletionPropagationProblem":
        """A problem over *pre-materialized* views, skipping query
        evaluation.

        The shared-memory attach path (:mod:`repro.core.shm`) rebuilds
        views from shipped witness arrays via
        :meth:`~repro.relational.views.View.from_witnesses`; this
        constructor accepts them instead of re-running
        ``ViewSet.materialize``.  ``delta_penalty`` only applies when
        ``cls`` is the balanced variant.
        """
        if not queries:
            raise ProblemError("at least one query is required")
        problem = object.__new__(cls)
        problem.instance = instance
        problem.queries = tuple(queries)
        problem.views = views
        problem.deletion = Deletion(views, deletions)
        problem._weights = {}
        for key, value in (weights or {}).items():
            vt = key if isinstance(key, ViewTuple) else ViewTuple(key[0], key[1])
            if value < 0:
                raise ProblemError(f"negative weight {value} for {vt!r}")
            problem._weights[vt] = float(value)
        if issubclass(cls, BalancedDeletionPropagationProblem):
            if delta_penalty < 0:
                raise ProblemError(f"negative delta_penalty {delta_penalty}")
            problem.delta_penalty = float(delta_penalty)
        return problem

    def eliminated_by(self, deleted: Iterable[Fact]) -> set[ViewTuple]:
        """View tuples eliminated by deleting ``deleted``: those whose
        *every* witness meets the deletion (correct for all CQs, since a
        view tuple survives iff some witness survives intact)."""
        deleted_set = frozenset(deleted)
        if not deleted_set:
            return set()
        affected: set[ViewTuple] = set()
        for fact in deleted_set:
            affected.update(self.dependents(fact))
        out: set[ViewTuple] = set()
        for vt in affected:
            if all(witness & deleted_set for witness in self.witnesses(vt)):
                out.add(vt)
        return out

    # ------------------------------------------------------------------
    # Structural classification
    # ------------------------------------------------------------------

    def is_key_preserving(self) -> bool:
        """All queries key-preserving (precondition of the paper's
        algorithms)."""
        return all(q.is_key_preserving() for q in self.queries)

    def is_project_free(self) -> bool:
        return all(q.is_project_free() for q in self.queries)

    def is_self_join_free(self) -> bool:
        return all(q.is_self_join_free() for q in self.queries)

    def is_single_query(self) -> bool:
        return len(self.queries) == 1

    def is_forest_case(self) -> bool:
        """Dual hypergraph has every component a hypertree (Fig. 3)."""
        from repro.hypergraph.dual import is_forest_case

        return is_forest_case(self.queries)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|D|={len(self.instance)}, "
            f"m={len(self.queries)}, ‖V‖={self.norm_v}, "
            f"‖ΔV‖={self.norm_delta_v}, l={self.max_arity})"
        )


class BalancedDeletionPropagationProblem(DeletionPropagationProblem):
    """Balanced deletion propagation (Section III, Theorem 2; Section V
    "Balanced version").

    Feasibility no longer requires eliminating all of ΔV; the objective
    becomes ``|ΔV not eliminated| + w(preserved eliminated)``, the
    positive-negative partial set cover semantics.  ``delta_penalty``
    scales the charge for ΔV tuples left standing (1.0 = the paper's
    unweighted trade-off).
    """

    def __init__(
        self,
        instance: Instance,
        queries: Sequence[ConjunctiveQuery],
        deletions: Mapping[str, Iterable[tuple]],
        weights: Mapping[ViewTuple | tuple, float] | None = None,
        delta_penalty: float = 1.0,
    ):
        super().__init__(instance, queries, deletions, weights)
        if delta_penalty < 0:
            raise ProblemError(f"negative delta_penalty {delta_penalty}")
        self.delta_penalty = float(delta_penalty)
