"""Greedy baseline heuristics.

Not part of the paper's contributions; used by the benches to put the
approximation algorithms' quality in context:

* :func:`solve_greedy_min_damage` — per ΔV witness, delete the fact with
  the least *marginal* weighted damage (preserved view tuples newly
  eliminated), processing ΔV tuples in order of increasing cheapest
  damage.
* :func:`solve_greedy_max_coverage` — repeatedly delete the fact with
  the best (remaining ΔV coverage) / (1 + marginal damage) ratio until
  all of ΔV is eliminated.

Both produce feasible solutions for key-preserving problems; neither has
a meaningful worst-case guarantee, which is precisely what the paper's
algorithms add.

Both run on the :class:`~repro.core.oracle.EliminationOracle` with a
lazy-invalidation priority queue: instead of rescanning every candidate
each round, scores live in a heap and only the candidates whose
dependents intersect the newly eliminated view tuples are rescored
after a pick (their coverage/damage are the only ones that can have
changed, since hit counts are monotone during greedy).  Stale heap
entries carry an outdated version stamp and are skipped on pop, so the
selection sequence is identical to the full-rescan originals.

The loops run at the integer-ID level of the compiled witness arena
(:mod:`repro.core.arena`): heap entries hold fact/view-tuple IDs, and
because IDs are interned in sorted object order the heap's tie-breaks
reproduce the object-level selection sequence exactly.  The initial
heaps are built by one batched oracle query (one gather + segment sum
over the witness CSR) and ``heapify`` — heap keys are totally ordered
tuples, so the pop sequence of a heapified batch is identical to
sequential ``heappush`` of the same entries, and the scores themselves
are bitwise the scalar ones (see :mod:`repro.core.npkernels`).  The
rescoring after each pick stays scalar: it touches only the few
candidates whose dependents intersect the newly eliminated view
tuples.  The object-backed twins live in :mod:`repro.core.reference`
for the differential suite.
"""

from __future__ import annotations

import heapq
from itertools import repeat

from repro.errors import NotKeyPreservingError
from repro.core.npkernels import concat_rows
from repro.core.oracle import EliminationOracle, OracleCounters
from repro.core.problem import DeletionPropagationProblem
from repro.core.session import SolveSession
from repro.core.solution import Propagation

__all__ = ["solve_greedy_min_damage", "solve_greedy_max_coverage"]


def _session_of(problem: DeletionPropagationProblem) -> SolveSession:
    session = SolveSession.of(problem)
    if not session.profile.key_preserving:
        raise NotKeyPreservingError(
            "greedy baselines require key-preserving queries"
        )
    return session


def solve_greedy_min_damage(
    problem: DeletionPropagationProblem,
    counters: OracleCounters | None = None,
) -> Propagation:
    """Cheapest-fact-per-witness greedy."""
    arena = _session_of(problem).arena
    oracle = EliminationOracle(problem, (), counters=counters)
    dep_of = arena.dep_of
    wit_of = arena.wit_of
    is_delta = arena.delta_flags
    hits = oracle._hits
    deleted = oracle._deleted_ids
    candidate_set = frozenset(arena.candidate_ids)

    # Heap of (damage, vid, fid, stamp) over every uncovered ΔV tuple
    # and every fact of its witness — the same key the full rescan
    # minimized (ID order == object order).  version[fid] invalidates
    # entries when the fact's damage may have changed.  All (vid, fid)
    # witness pairs come from one CSR gather and their damages from one
    # batched oracle query (same per-pair oracle-hit accounting, same
    # per-fact fold bits as the scalar marginal_damage loop).
    version: dict[int, int] = {}
    marginal_damage = oracle.marginal_damage_id
    delta_np = arena.delta_ids_np
    pair_fids, pair_row, _ = concat_rows(
        arena.wit_offsets, arena.wit_indices, delta_np
    )
    damages = oracle.marginal_damage_ids(pair_fids)
    heap: list[tuple[float, int, int, int]] = list(
        zip(
            damages.tolist(),
            delta_np[pair_row].tolist(),
            pair_fids.tolist(),
            repeat(0),
        )
    )
    heapq.heapify(heap)

    while oracle._uncovered and heap:
        damage, vid, fid, stamp = heapq.heappop(heap)
        if stamp != version.get(fid, 0) or hits[vid] > 0:
            continue
        # Facts whose damage can have changed: those sharing a newly
        # eliminated *preserved* view tuple with the pick (ΔV
        # transitions are handled by the hits check on pop).  Must be
        # collected before the add flips the hit counts.
        affected: set[int] = set()
        for dvid in dep_of[fid]:
            if hits[dvid] == 0 and not is_delta[dvid]:
                affected.update(wit_of[dvid])
        affected &= candidate_set
        oracle.add_id(fid)
        for other in affected:
            if other in deleted:
                continue
            version[other] = version.get(other, 0) + 1
            damage = marginal_damage(other)
            for target in dep_of[other]:
                if is_delta[target] and hits[target] == 0:
                    heapq.heappush(
                        heap, (damage, target, other, version[other])
                    )
    return oracle.to_propagation(method="greedy-min-damage")


def solve_greedy_max_coverage(
    problem: DeletionPropagationProblem,
    counters: OracleCounters | None = None,
) -> Propagation:
    """Best coverage-per-damage greedy."""
    arena = _session_of(problem).arena
    oracle = EliminationOracle(problem, (), counters=counters)
    dep_of = arena.dep_of
    wit_of = arena.wit_of
    hits = oracle._hits
    deleted = oracle._deleted_ids
    candidate_set = frozenset(arena.candidate_ids)
    coverage = oracle.coverage_id
    marginal_damage = oracle.marginal_damage_id

    # Max-heap of (-score, fid, stamp); ties break toward the smallest
    # fact ID — i.e. the smallest fact, matching the original scan over
    # sorted candidates.  The initial scan is batched: one coverage
    # query over all candidates, one damage query over the covering
    # subset (the scalar loop skips the damage call when coverage is
    # zero, so the oracle-hit totals match), and a single vectorized
    # score division — the same IEEE op per entry as the scalar path.
    version: dict[int, int] = {}

    def _push(fid: int, stamp: int) -> None:
        cov = coverage(fid)
        if cov == 0:
            return
        score = cov / (1.0 + marginal_damage(fid))
        heapq.heappush(heap, (-score, fid, stamp))

    cand_np = arena.candidate_ids_np
    cov_all = oracle.coverage_ids(cand_np)
    covering = cand_np[cov_all > 0]
    scores = cov_all[cov_all > 0] / (
        1.0 + oracle.marginal_damage_ids(covering)
    )
    heap: list[tuple[float, int, int]] = list(
        zip((-scores).tolist(), covering.tolist(), repeat(0))
    )
    heapq.heapify(heap)

    while oracle._uncovered and heap:
        _, fid, stamp = heapq.heappop(heap)
        if stamp != version.get(fid, 0) or fid in deleted:
            continue
        # Candidates sharing any newly eliminated view tuple (ΔV or
        # preserved) can see coverage or damage change.
        affected: set[int] = set()
        for dvid in dep_of[fid]:
            if hits[dvid] == 0:
                affected.update(wit_of[dvid])
        affected &= candidate_set
        oracle.add_id(fid)
        for other in affected:
            if other in deleted:
                continue
            version[other] = version.get(other, 0) + 1
            _push(other, version[other])
    return oracle.to_propagation(method="greedy-max-coverage")
