"""Greedy baseline heuristics.

Not part of the paper's contributions; used by the benches to put the
approximation algorithms' quality in context:

* :func:`solve_greedy_min_damage` — per ΔV witness, delete the fact with
  the least *marginal* weighted damage (preserved view tuples newly
  eliminated), processing ΔV tuples in order of increasing cheapest
  damage.
* :func:`solve_greedy_max_coverage` — repeatedly delete the fact with
  the best (remaining ΔV coverage) / (1 + marginal damage) ratio until
  all of ΔV is eliminated.

Both produce feasible solutions for key-preserving problems; neither has
a meaningful worst-case guarantee, which is precisely what the paper's
algorithms add.

Both run on the :class:`~repro.core.oracle.EliminationOracle` with a
lazy-invalidation priority queue: instead of rescanning every candidate
each round, scores live in a heap and only the candidates whose
dependents intersect the newly eliminated view tuples are rescored
after a pick (their coverage/damage are the only ones that can have
changed, since hit counts are monotone during greedy).  Stale heap
entries carry an outdated version stamp and are skipped on pop, so the
selection sequence is identical to the full-rescan originals.
"""

from __future__ import annotations

import heapq

from repro.errors import NotKeyPreservingError
from repro.relational.tuples import Fact
from repro.relational.views import ViewTuple
from repro.core.oracle import EliminationOracle, OracleCounters
from repro.core.problem import DeletionPropagationProblem
from repro.core.solution import Propagation

__all__ = ["solve_greedy_min_damage", "solve_greedy_max_coverage"]


def _require_key_preserving(problem: DeletionPropagationProblem) -> None:
    if not problem.is_key_preserving():
        raise NotKeyPreservingError(
            "greedy baselines require key-preserving queries"
        )


def _newly_eliminated(
    oracle: EliminationOracle, fact: Fact
) -> list[ViewTuple]:
    """View tuples whose hit count would go 0 → 1 when ``fact`` is
    added (must be computed *before* the add)."""
    return [
        vt
        for vt in oracle.problem.dependents(fact)
        if oracle.hits(vt) == 0
    ]


def _affected_candidates(
    problem: DeletionPropagationProblem,
    newly: list[ViewTuple],
    candidate_set: frozenset[Fact],
) -> set[Fact]:
    """Candidates whose coverage or damage can have changed: exactly
    the facts occurring in a witness of a newly eliminated view tuple
    (for key-preserving queries, ``vt ∈ dep(f) ⇔ f ∈ wit(vt)``)."""
    affected: set[Fact] = set()
    for vt in newly:
        affected.update(problem.witness(vt))
    return affected & candidate_set


def solve_greedy_min_damage(
    problem: DeletionPropagationProblem,
    counters: OracleCounters | None = None,
) -> Propagation:
    """Cheapest-fact-per-witness greedy."""
    _require_key_preserving(problem)
    oracle = EliminationOracle(problem, (), counters=counters)
    delta = frozenset(problem.deleted_view_tuples())
    candidate_set = frozenset(problem.candidate_facts())

    # Heap of (damage, vt, fact, stamp) over every uncovered ΔV tuple
    # and every fact of its witness — the same key the full rescan
    # minimized.  version[fact] invalidates entries when the fact's
    # damage may have changed.
    version: dict[Fact, int] = {}
    heap: list[tuple[float, ViewTuple, Fact, int]] = []
    for vt in sorted(delta):
        for fact in sorted(problem.witness(vt)):
            heapq.heappush(
                heap, (oracle.marginal_damage(fact), vt, fact, 0)
            )

    while oracle.uncovered_delta() and heap:
        damage, vt, fact, stamp = heapq.heappop(heap)
        if stamp != version.get(fact, 0) or oracle.hits(vt) > 0:
            continue
        newly = _newly_eliminated(oracle, fact)
        oracle.add(fact)
        # Only facts sharing a newly eliminated *preserved* view tuple
        # can see their damage change; ΔV transitions are handled by
        # the hits check on pop.
        affected = _affected_candidates(
            problem, [v for v in newly if v not in delta], candidate_set
        )
        for other in affected:
            if other in oracle:
                continue
            version[other] = version.get(other, 0) + 1
            damage = oracle.marginal_damage(other)
            for target in problem.dependents(other):
                if target in delta and oracle.hits(target) == 0:
                    heapq.heappush(
                        heap, (damage, target, other, version[other])
                    )
    return oracle.to_propagation(method="greedy-min-damage")


def solve_greedy_max_coverage(
    problem: DeletionPropagationProblem,
    counters: OracleCounters | None = None,
) -> Propagation:
    """Best coverage-per-damage greedy."""
    _require_key_preserving(problem)
    oracle = EliminationOracle(problem, (), counters=counters)
    candidate_set = frozenset(problem.candidate_facts())

    # Max-heap of (-score, fact, stamp); ties break toward the smallest
    # fact, matching the original scan over sorted candidates.
    version: dict[Fact, int] = {}
    heap: list[tuple[float, Fact, int]] = []

    def _push(fact: Fact, stamp: int) -> None:
        coverage = oracle.coverage(fact)
        if coverage == 0:
            return
        score = coverage / (1.0 + oracle.marginal_damage(fact))
        heapq.heappush(heap, (-score, fact, stamp))

    for fact in problem.candidate_facts():
        _push(fact, 0)

    while oracle.uncovered_delta() and heap:
        _, fact, stamp = heapq.heappop(heap)
        if stamp != version.get(fact, 0) or fact in oracle:
            continue
        newly = _newly_eliminated(oracle, fact)
        oracle.add(fact)
        for other in _affected_candidates(problem, newly, candidate_set):
            if other in oracle:
                continue
            version[other] = version.get(other, 0) + 1
            _push(other, version[other])
    return oracle.to_propagation(method="greedy-max-coverage")
