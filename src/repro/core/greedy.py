"""Greedy baseline heuristics.

Not part of the paper's contributions; used by the benches to put the
approximation algorithms' quality in context:

* :func:`solve_greedy_min_damage` — per ΔV witness, delete the fact with
  the least *marginal* weighted damage (preserved view tuples newly
  eliminated), processing ΔV tuples in order of increasing cheapest
  damage.
* :func:`solve_greedy_max_coverage` — repeatedly delete the fact with
  the best (remaining ΔV coverage) / (1 + marginal damage) ratio until
  all of ΔV is eliminated.

Both produce feasible solutions for key-preserving problems; neither has
a meaningful worst-case guarantee, which is precisely what the paper's
algorithms add.
"""

from __future__ import annotations

from repro.errors import NotKeyPreservingError
from repro.relational.tuples import Fact
from repro.relational.views import ViewTuple
from repro.core.problem import DeletionPropagationProblem
from repro.core.solution import Propagation

__all__ = ["solve_greedy_min_damage", "solve_greedy_max_coverage"]


def _require_key_preserving(problem: DeletionPropagationProblem) -> None:
    if not problem.is_key_preserving():
        raise NotKeyPreservingError(
            "greedy baselines require key-preserving queries"
        )


def _marginal_damage(
    problem: DeletionPropagationProblem,
    fact: Fact,
    eliminated: set[ViewTuple],
    delta: frozenset[ViewTuple],
) -> float:
    return sum(
        problem.weight(vt)
        for vt in problem.dependents(fact)
        if vt not in delta and vt not in eliminated
    )


def solve_greedy_min_damage(
    problem: DeletionPropagationProblem,
) -> Propagation:
    """Cheapest-fact-per-witness greedy."""
    _require_key_preserving(problem)
    delta = frozenset(problem.deleted_view_tuples())
    eliminated: set[ViewTuple] = set()
    deleted: set[Fact] = set()
    remaining = sorted(delta)
    while remaining:
        # Choose the (ΔV tuple, fact) pair with the least marginal damage.
        best: tuple[float, ViewTuple, Fact] | None = None
        for vt in remaining:
            if vt in eliminated:
                continue
            for fact in sorted(problem.witness(vt)):
                damage = _marginal_damage(problem, fact, eliminated, delta)
                key = (damage, vt, fact)
                if best is None or key < best:
                    best = key
        if best is None:
            break
        _, chosen_vt, chosen_fact = best
        deleted.add(chosen_fact)
        eliminated.update(problem.dependents(chosen_fact))
        remaining = [vt for vt in remaining if vt not in eliminated]
    return Propagation(problem, deleted, method="greedy-min-damage")


def solve_greedy_max_coverage(
    problem: DeletionPropagationProblem,
) -> Propagation:
    """Best coverage-per-damage greedy."""
    _require_key_preserving(problem)
    delta = frozenset(problem.deleted_view_tuples())
    eliminated: set[ViewTuple] = set()
    deleted: set[Fact] = set()
    uncovered = set(delta)
    candidates = problem.candidate_facts()
    while uncovered:
        best_fact: Fact | None = None
        best_score = float("-inf")
        for fact in candidates:
            if fact in deleted:
                continue
            coverage = sum(
                1 for vt in problem.dependents(fact) if vt in uncovered
            )
            if coverage == 0:
                continue
            damage = _marginal_damage(problem, fact, eliminated, delta)
            score = coverage / (1.0 + damage)
            if score > best_score:
                best_score = score
                best_fact = fact
        if best_fact is None:
            break
        deleted.add(best_fact)
        eliminated.update(problem.dependents(best_fact))
        uncovered -= problem.dependents(best_fact)
    return Propagation(problem, deleted, method="greedy-max-coverage")
