"""Single-query baselines (the m = 1 case the paper builds on).

The paper recalls (Section III) that view side-effect for a *single*
key-preserving conjunctive query is polynomial (Cong, Fan, Geerts, Li,
Luo 2012).  This module implements the tractable single-query cases used
as baselines and inside the applications:

* :func:`solve_single_deletion` — ``|ΔV| = 1``: the optimum deletes
  exactly one witness fact (extra deletions only add damage), so the
  minimum-collateral fact is exact.  Works for any number of queries.
* :func:`solve_two_atom_mincut` — a single self-join-free two-atom
  key-preserving query, arbitrary ΔV, via minimum s-t cut.  Each view
  tuple's witness is a pair ``(fact of atom 1, fact of atom 2)``;
  choosing which facts to delete is a bipartite covering problem with
  shared costs.  The cut double-charges a preserved tuple only when a
  solution hits it from *both* sides, so the cut value is between the
  true cost and twice the true cost: the result is a polynomial
  **2-approximation**, and it is exact whenever no preserved witness
  straddles two ΔV pairs on opposite sides (checked by the E-suite
  against the exact solver).
* :func:`solve_single_query` — exact dispatch: single deletion →
  direct argmin, otherwise the exact solver (the general PTIME
  construction the paper cites from Cong et al. 2012 concerns the
  single-deletion/annotation setting; no published exact polynomial
  algorithm covers weighted multi-tuple ΔV, so exactness is preserved
  here at possibly exponential cost).
"""

from __future__ import annotations

import networkx as nx

from repro.errors import NotKeyPreservingError, SolverError
from repro.relational.tuples import Fact
from repro.core.exact import solve_exact
from repro.core.problem import DeletionPropagationProblem
from repro.core.session import SolveSession
from repro.core.solution import Propagation

__all__ = [
    "solve_single_deletion",
    "solve_two_atom_mincut",
    "solve_single_query",
]


def solve_single_deletion(problem: DeletionPropagationProblem) -> Propagation:
    """Exact optimum when ΔV is a single view tuple (key-preserving)."""
    delta = problem.deleted_view_tuples()
    if len(delta) != 1:
        raise SolverError(
            f"solve_single_deletion expects |ΔV| = 1, got {len(delta)}"
        )
    if not SolveSession.of(problem).profile.key_preserving:
        raise NotKeyPreservingError(
            "solve_single_deletion requires key-preserving queries"
        )
    vt = delta[0]
    best_fact: Fact | None = None
    best_damage = float("inf")
    for fact in sorted(problem.witness(vt)):
        damage = sum(
            problem.weight(d)
            for d in problem.dependents(fact)
            if d != vt
        )
        if damage < best_damage:
            best_damage = damage
            best_fact = fact
    assert best_fact is not None
    return Propagation(problem, (best_fact,), method="single-deletion")


def solve_two_atom_mincut(problem: DeletionPropagationProblem) -> Propagation:
    """Min-cut 2-approximation for a single two-atom sj-free
    key-preserving query (exact when no preserved witness straddles two
    ΔV pairs on opposite sides — see the module docstring).

    Network: ``s → p`` (capacity ``w_p``) for every preserved tuple
    ``p``; ``p → a`` (∞) to the atom-1 fact of ``p``'s witness;
    ``a → b`` (∞) for every ΔV witness ``(a, b)``; ``b → p'`` (∞) for
    the atom-2 fact of each preserved ``p'``; ``p' → t`` (``w_p'``).
    A cut must, per ΔV pair ``(a, b)``, pay for all preserved tuples
    through ``a`` or all through ``b`` — exactly the choice of which
    fact to delete — and paying for a shared preserved tuple once
    covers all its occurrences.
    """
    session = SolveSession.of(problem)
    if not session.profile.single_query:
        raise SolverError("solve_two_atom_mincut expects a single query")
    query = problem.queries[0]
    if len(query.body) != 2 or not query.is_self_join_free():
        raise SolverError(
            "solve_two_atom_mincut expects a two-atom sj-free query"
        )
    if not session.profile.key_preserving:
        raise NotKeyPreservingError(
            "solve_two_atom_mincut requires a key-preserving query"
        )
    relation_a = query.body[0].relation
    delta = frozenset(problem.deleted_view_tuples())

    def split(witness: frozenset[Fact]) -> tuple[Fact, Fact]:
        fact_a = next(f for f in witness if f.relation == relation_a)
        fact_b = next(f for f in witness if f.relation != relation_a)
        return fact_a, fact_b

    graph = nx.DiGraph()
    source, sink = ("S",), ("T",)
    relevant_a: set[Fact] = set()
    relevant_b: set[Fact] = set()
    for vt in delta:
        fact_a, fact_b = split(problem.witness(vt))
        graph.add_edge(("a", fact_a), ("b", fact_b), capacity=float("inf"))
        relevant_a.add(fact_a)
        relevant_b.add(fact_b)
    for vt in problem.preserved_view_tuples():
        fact_a, fact_b = split(problem.witness(vt))
        weight = problem.weight(vt)
        if fact_a in relevant_a:
            graph.add_edge(source, ("pa", vt), capacity=weight)
            graph.add_edge(("pa", vt), ("a", fact_a), capacity=float("inf"))
        if fact_b in relevant_b:
            graph.add_edge(("b", fact_b), ("pb", vt), capacity=float("inf"))
            graph.add_edge(("pb", vt), sink, capacity=weight)
    if source not in graph or sink not in graph:
        # No preserved tuples at risk on one side: delete the free side.
        deleted = set()
        for vt in delta:
            fact_a, fact_b = split(problem.witness(vt))
            if source not in graph:
                deleted.add(fact_a)
            else:
                deleted.add(fact_b)
        return Propagation(problem, deleted, method="two-atom-mincut")

    _, (reachable, _) = nx.minimum_cut(graph, source, sink)
    deleted: set[Fact] = set()
    for vt in delta:
        fact_a, fact_b = split(problem.witness(vt))
        if ("a", fact_a) not in reachable:
            deleted.add(fact_a)
        else:
            deleted.add(fact_b)
    return Propagation(problem, deleted, method="two-atom-mincut")


def solve_single_query(problem: DeletionPropagationProblem) -> Propagation:
    """Dispatch for the single-query case; exact in all branches."""
    profile = SolveSession.of(problem).profile
    if not profile.single_query:
        raise SolverError("solve_single_query expects exactly one query")
    if profile.norm_delta_v == 1 and profile.key_preserving:
        return solve_single_deletion(problem)
    return solve_exact(problem)
