"""Compiled witness arena — integer-ID form of a propagation problem.

Every solver in this package is a covering loop over the unique
witnesses guaranteed by key preservation, and after the incremental
:class:`~repro.core.oracle.EliminationOracle` made each move
``O(dependents)``, the remaining constant factor was dominated by
Python object hashing: the dependents were frozensets of
:class:`~repro.relational.views.ViewTuple` and the witnesses frozensets
of :class:`~repro.relational.tuples.Fact`, so every counter lookup paid
a tuple hash.  :class:`CompiledProblem` flattens the whole witness
bipartite structure into dense integer IDs **once**, after which any
number of solving strategies (greedy, local search, the RBSC / PN-PSC
set-cover pipelines, a parallel portfolio) reuse the same arrays —
compile once, solve many.

Memory layout
-------------

* ``facts`` / ``view_tuples`` — the interning tables, ID → object.  IDs
  are assigned **in sorted object order**, so comparing two IDs orders
  exactly like comparing the objects they name; heaps and sorted scans
  over IDs therefore reproduce the object-level iteration order
  move-for-move.
* ``dep_offsets`` / ``dep_indices`` — CSR adjacency fact → dependent
  view tuples: the dependents of fact ``f`` are
  ``dep_indices[dep_offsets[f]:dep_offsets[f + 1]]`` (sorted).
* ``wit_offsets`` / ``wit_indices`` — CSR adjacency view tuple →
  witness facts (the transpose; key preservation makes the two sides of
  the bipartite graph each other's inverse).
* ``weights`` — flat per-view-tuple weight array.
* ``is_delta`` — flat per-view-tuple ΔV membership flags.

The CSR slabs are **read-only numpy buffers** (``np.int32`` adjacency,
``np.float64`` weights, ``np.uint8`` flags): the canonical layout for
the vectorized kernels (batched gathers + segment sums in
:mod:`repro.core.npkernels`), and — being flat, immutable, contiguous
buffers — directly shareable across processes: :meth:`export_shm` /
:meth:`attach_shm` move them onto named ``multiprocessing.shared_memory``
segments so workers *attach* to a compiled instance instead of
re-compiling it (see :mod:`repro.core.shm`).  The scalar move loops
keep allocation-free Python views over the same data: ``dep_of`` /
``wit_of`` are per-row tuples, ``weights_list`` / ``delta_flags`` are a
float tuple / ``bytes`` twin of the flat arrays (iterating small tuples
and indexing ``bytes`` is the fastest loop CPython offers, and numpy
scalar extraction would slow every per-move read).  The numpy slab is
the single source of truth: every scalar twin is a *lazy* view
materialized on first use (and shared by reference across ΔV-sibling
arenas), so the witness structure is stored once, not twice, and an
attached arena pays nothing for loops it never runs.

The object-level API (:class:`~repro.core.problem.DeletionPropagationProblem`,
:class:`~repro.core.solution.Propagation`) remains the public surface;
:meth:`CompiledProblem.fact_of` / :meth:`CompiledProblem.vt_of`
reconstruct objects from IDs on export.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

import numpy as np

from repro.errors import NotKeyPreservingError
from repro.relational.tuples import Fact
from repro.relational.views import ViewTuple
from repro.core.problem import (
    BalancedDeletionPropagationProblem,
    DeletionPropagationProblem,
)

__all__ = ["CandidateSlab", "CompiledProblem", "compile_problem"]


class CandidateSlab(NamedTuple):
    """Flat batch layout of the candidate facts' dependent rows.

    One gather-ready slab per (arena, ΔV) binding: the dependent rows
    of every candidate fact concatenated (``vids``), with the owning
    candidate *position* per slot (``rowid``), the per-candidate
    offsets (``rowptr``), the candidate fact IDs in ascending order
    (``ids``), and the inverse map fact ID → candidate position
    (``pos_of``, ``-1`` for non-candidates).  ``delta`` / ``weights``
    are the per-slot ΔV flags and weights (state-independent gathers
    the batch passes would otherwise redo every call).
    """

    ids: np.ndarray
    rowptr: np.ndarray
    vids: np.ndarray
    rowid: np.ndarray
    pos_of: np.ndarray
    delta: np.ndarray
    weights: np.ndarray


def _readonly(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


class _StructCache:
    """Lazily materialized scalar twins of the ΔV-independent CSR slabs.

    Shared **by reference** across every ΔV-sibling arena of one
    instance (:meth:`CompiledProblem.rebound`), so whichever binding
    first runs a scalar loop materializes the tuple views for all of
    them — and bindings that only ever run the vectorized kernels never
    materialize them at all.
    """

    __slots__ = ("wit_of", "dep_of", "dep_set_of", "weights_list")

    def __init__(self) -> None:
        self.wit_of: tuple[tuple[int, ...], ...] | None = None
        self.dep_of: tuple[tuple[int, ...], ...] | None = None
        self.dep_set_of: tuple[frozenset[int], ...] | None = None
        self.weights_list: tuple[float, ...] | None = None


def _csr_rows(
    offsets: np.ndarray, indices: np.ndarray
) -> tuple[tuple[int, ...], ...]:
    """Per-row tuple views of a CSR slab (plain Python ints, so the
    scalar hot loops hash/compare without numpy boxing)."""
    flat = indices.tolist()
    bounds = offsets.tolist()
    return tuple(
        tuple(flat[start:stop]) for start, stop in zip(bounds, bounds[1:])
    )


class CompiledProblem:
    """Integer-ID witness arena for one key-preserving problem.

    Built in one pass over the problem's witness structure; immutable
    afterwards.  Use :meth:`CompiledProblem.of` to share one compile
    across every solver touching the same problem.
    """

    __slots__ = (
        "problem",
        "facts",
        "fact_ids",
        "view_tuples",
        "vt_ids",
        "dep_offsets",
        "dep_indices",
        "wit_offsets",
        "wit_indices",
        "weights",
        "is_delta",
        "delta_flags",
        "delta_mask",
        "delta_ids_np",
        "candidate_ids_np",
        "num_delta",
        "balanced",
        "delta_penalty",
        "_struct",
        "_delta_ids",
        "_preserved_ids",
        "_candidate_ids",
        "_cand_slab",
        "_exact_costs",
        "_shm",
    )

    def __init__(self, problem: DeletionPropagationProblem):
        if not problem.is_key_preserving():
            raise NotKeyPreservingError(
                "the witness arena requires key-preserving queries "
                "(unique witnesses)"
            )
        self.problem = problem
        self.balanced = isinstance(problem, BalancedDeletionPropagationProblem)
        self.delta_penalty = float(getattr(problem, "delta_penalty", 1.0))

        # Interning tables in sorted order so ID order == object order.
        self.facts: tuple[Fact, ...] = tuple(sorted(problem.instance.facts()))
        self.fact_ids: dict[Fact, int] = {
            fact: fid for fid, fact in enumerate(self.facts)
        }
        self.view_tuples: tuple[ViewTuple, ...] = tuple(
            problem.all_view_tuples()  # already sorted by ViewSet
        )
        self.vt_ids: dict[ViewTuple, int] = {
            vt: vid for vid, vt in enumerate(self.view_tuples)
        }

        num_facts = len(self.facts)

        # One pass over the unique witnesses builds both CSR sides.
        weight_values: list[float] = []
        delta_flags = bytearray(len(self.view_tuples))
        witness_ids: list[list[int]] = []
        dep_lists: list[list[int]] = [[] for _ in range(num_facts)]
        deletion = problem.deletion
        weight = problem.weight
        fact_ids = self.fact_ids
        for vid, vt in enumerate(self.view_tuples):
            weight_values.append(weight(vt))
            if vt in deletion:
                delta_flags[vid] = 1
            wit = sorted(fact_ids[fact] for fact in problem.witness(vt))
            witness_ids.append(wit)
            for fid in wit:
                dep_lists[fid].append(vid)

        self.weights = _readonly(np.asarray(weight_values, dtype=np.float64))
        self.wit_offsets, self.wit_indices = _csr(witness_ids)
        self.dep_offsets, self.dep_indices = _csr(dep_lists)
        # Scalar tuple views over the CSR slabs are *lazy* (see
        # _StructCache) — the flat arrays are the only eager store.
        self._struct = _StructCache()
        self._shm = None

        self._set_delta_flags(bytes(delta_flags))
        self._bind_delta()
        self._exact_costs: bool | None = None

    @property
    def exact_costs(self) -> bool:
        """Whether every objective value any solver can compute over
        this arena is exact in ``float64``.

        True when the weights and the ΔV penalty are non-negative
        integers whose largest reachable aggregate stays below
        ``2**52``: integer float64 arithmetic never rounds there, so
        *every* association of a cost computation — scalar fold or
        vectorized broadcast — yields the identical bit pattern.  The
        batch kernels use this to decide swap accepts straight from the
        vectorized cost matrix instead of re-running near-ties through
        the scalar trial.  Computed lazily, cached per binding.
        """
        cached = self._exact_costs
        if cached is None:
            weights = self.weights
            penalty = self.delta_penalty
            reach = float(weights.sum()) + (abs(penalty) + 1.0) * (
                self.num_view_tuples + 1
            )
            cached = bool(
                penalty.is_integer()
                and penalty >= 0.0
                and reach < 2.0**52
                and bool(np.all(np.floor(weights) == weights))
                and bool(np.all(weights >= 0.0))
            )
            self._exact_costs = cached
        return cached

    def _set_delta_flags(self, flags: "bytes | np.ndarray") -> None:
        """Install the per-view-tuple ΔV flags from either a ``bytes``
        string (local compile / rebind) or a ``np.uint8`` array (a
        shared-memory view on attach) — the other representation is
        derived, so both stores stay in lock-step."""
        if isinstance(flags, np.ndarray):
            self.is_delta = flags
            self.delta_flags = flags.tobytes()
        else:
            self.delta_flags = flags
            self.is_delta = np.frombuffer(flags, dtype=np.uint8)
        self.delta_mask = _readonly(self.is_delta.view(bool))

    def _bind_delta(self) -> None:
        """Derive the ΔV slices (``delta_ids_np`` / ``candidate_ids_np``
        / ``num_delta``) from ``is_delta`` as batch numpy operations.
        Shared by the full compile, the O(‖ΔV‖) rebind, and the
        shared-memory attach; the tuple twins reset to lazy."""
        mask = self.delta_mask
        self.delta_ids_np = _readonly(np.flatnonzero(mask))
        self.num_delta = int(self.delta_ids_np.size)
        witness_lengths = np.diff(self.wit_offsets)
        slot_is_delta = np.repeat(mask, witness_lengths)
        self.candidate_ids_np = _readonly(
            np.unique(self.wit_indices[slot_is_delta]).astype(np.int64)
        )
        self._delta_ids: tuple[int, ...] | None = None
        self._preserved_ids: tuple[int, ...] | None = None
        self._candidate_ids: tuple[int, ...] | None = None
        self._cand_slab: CandidateSlab | None = None

    # ------------------------------------------------------------------
    # Lazy scalar twins (single source of truth: the numpy slabs)
    # ------------------------------------------------------------------

    @property
    def wit_of(self) -> tuple[tuple[int, ...], ...]:
        """Per-row tuple views of the vt → witness CSR (lazy, shared
        across ΔV siblings)."""
        cached = self._struct.wit_of
        if cached is None:
            cached = self._struct.wit_of = _csr_rows(
                self.wit_offsets, self.wit_indices
            )
        return cached

    @property
    def dep_of(self) -> tuple[tuple[int, ...], ...]:
        """Per-row tuple views of the fact → dependents CSR (lazy,
        shared across ΔV siblings)."""
        cached = self._struct.dep_of
        if cached is None:
            cached = self._struct.dep_of = _csr_rows(
                self.dep_offsets, self.dep_indices
            )
        return cached

    @property
    def dep_set_of(self) -> tuple[frozenset[int], ...]:
        """Frozen membership views of the dependent rows for the swap
        hypotheticals (``vid in dep(replacement)``) — built once so no
        per-trial set churn."""
        cached = self._struct.dep_set_of
        if cached is None:
            cached = self._struct.dep_set_of = tuple(
                frozenset(row) for row in self.dep_of
            )
        return cached

    @property
    def weights_list(self) -> tuple[float, ...]:
        """Float-tuple twin of ``weights`` for the scalar loops."""
        cached = self._struct.weights_list
        if cached is None:
            cached = self._struct.weights_list = tuple(self.weights.tolist())
        return cached

    @property
    def delta_ids(self) -> tuple[int, ...]:
        """ΔV view-tuple IDs, ascending (tuple twin of
        ``delta_ids_np``)."""
        cached = self._delta_ids
        if cached is None:
            cached = self._delta_ids = tuple(self.delta_ids_np.tolist())
        return cached

    @property
    def preserved_ids(self) -> tuple[int, ...]:
        """Non-ΔV view-tuple IDs, ascending."""
        cached = self._preserved_ids
        if cached is None:
            cached = self._preserved_ids = tuple(
                np.flatnonzero(~self.delta_mask).tolist()
            )
        return cached

    @property
    def candidate_ids(self) -> tuple[int, ...]:
        """Facts occurring in some ΔV witness, ascending (tuple twin of
        ``candidate_ids_np``)."""
        cached = self._candidate_ids
        if cached is None:
            cached = self._candidate_ids = tuple(
                self.candidate_ids_np.tolist()
            )
        return cached

    def candidate_slab(self) -> CandidateSlab:
        """The (lazily built, per-binding cached) flat batch layout of
        the candidate facts' dependent rows (see :class:`CandidateSlab`).
        ΔV-dependent — rebuilt by :meth:`rebound`, not shared."""
        slab = self._cand_slab
        if slab is None:
            from repro.core.npkernels import concat_rows

            ids = self.candidate_ids_np
            vids, rowid, rowptr = concat_rows(
                self.dep_offsets, self.dep_indices, ids
            )
            pos_of = np.full(len(self.facts), -1, dtype=np.int64)
            pos_of[ids] = np.arange(ids.size, dtype=np.int64)
            slab = CandidateSlab(
                ids=ids,
                rowptr=_readonly(rowptr),
                vids=_readonly(vids),
                rowid=_readonly(rowid),
                pos_of=_readonly(pos_of),
                delta=_readonly(self.delta_mask[vids]),
                weights=_readonly(self.weights[vids]),
            )
            self._cand_slab = slab
        return slab

    def rebound(self, problem: DeletionPropagationProblem) -> "CompiledProblem":
        """A sibling arena for ``problem`` — the same instance/queries
        with a different ΔV — sharing every ΔV-independent array.

        The interning tables, both CSR adjacency sides, the per-row
        tuple views, and the weights carry over by reference; only the
        ``is_delta`` flags and the delta/candidate slices are rebuilt,
        so re-binding a request against a compiled base costs
        O(‖V‖ + ‖ΔV‖) instead of a full recompile.  This is the arena
        half of :meth:`~repro.core.problem.DeletionPropagationProblem.with_deletions`.
        """
        if problem.views is not self.problem.views:
            raise ValueError(
                "rebound() requires a problem sharing this arena's "
                "materialized views (use with_deletions)"
            )
        clone = object.__new__(CompiledProblem)
        clone.problem = problem
        clone.balanced = isinstance(problem, BalancedDeletionPropagationProblem)
        clone.delta_penalty = float(getattr(problem, "delta_penalty", 1.0))
        # ΔV-independent structure: shared by reference.
        clone.facts = self.facts
        clone.fact_ids = self.fact_ids
        clone.view_tuples = self.view_tuples
        clone.vt_ids = self.vt_ids
        clone.dep_offsets = self.dep_offsets
        clone.dep_indices = self.dep_indices
        clone.wit_offsets = self.wit_offsets
        clone.wit_indices = self.wit_indices
        clone.weights = self.weights
        # The lazy scalar-twin cache is shared *by reference*: whichever
        # sibling materializes a tuple view first shares it with all.
        clone._struct = self._struct
        clone._shm = self._shm
        # ΔV slices: rebuilt from the new deletion.
        flags = bytearray(len(self.view_tuples))
        vt_ids = self.vt_ids
        for vt in problem.deleted_view_tuples():
            flags[vt_ids[vt]] = 1
        clone._set_delta_flags(bytes(flags))
        clone._bind_delta()
        # Exactness depends only on the (shared) weights and the
        # penalty — carry the verdict over when the penalty matches.
        clone._exact_costs = (
            self._exact_costs
            if clone.delta_penalty == self.delta_penalty
            else None
        )
        return clone

    # ------------------------------------------------------------------
    # Shared-memory export / attach (see :mod:`repro.core.shm`)
    # ------------------------------------------------------------------

    def export_shm(self) -> dict:
        """Publish this arena's flat slabs into one named
        ``multiprocessing.shared_memory`` segment and return the JSON
        manifest other processes pass to :meth:`attach_shm`.

        Idempotent per arena: repeated calls return the same manifest /
        segment.  The calling process owns the segment; it is closed and
        unlinked when the arena (and every ΔV sibling sharing the
        handle) is garbage collected, or eagerly via
        :func:`repro.core.shm.release_arena`.
        """
        from repro.core.shm import export_arena

        return export_arena(self)

    @classmethod
    def attach_shm(cls, manifest: dict) -> "CompiledProblem":
        """Attach to an arena exported by :meth:`export_shm` in another
        process — bitwise-identical slabs, zero compile work.  The
        returned arena holds a read-only attachment; the exporting
        process retains ownership of the segment's lifetime.
        """
        from repro.core.shm import attach_arena

        return attach_arena(manifest)

    # ------------------------------------------------------------------
    # Shared-compile cache
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, problem: DeletionPropagationProblem) -> "CompiledProblem":
        """The (cached) compiled form of ``problem`` — every solver that
        asks for the same problem gets the same arena."""
        compiled = getattr(problem, "_compiled_arena", None)
        if compiled is None or compiled.problem is not problem:
            compiled = cls(problem)
            problem._compiled_arena = compiled
        return compiled

    # ------------------------------------------------------------------
    # ID ↔ object translation (export surface)
    # ------------------------------------------------------------------

    @property
    def num_facts(self) -> int:
        return len(self.facts)

    @property
    def num_view_tuples(self) -> int:
        return len(self.view_tuples)

    def fact_id(self, fact: Fact) -> int:
        return self.fact_ids[fact]

    def fact_of(self, fid: int) -> Fact:
        return self.facts[fid]

    def vt_id(self, vt: ViewTuple) -> int:
        return self.vt_ids[vt]

    def vt_of(self, vid: int) -> ViewTuple:
        return self.view_tuples[vid]

    def facts_of(self, fids: Iterable[int]) -> list[Fact]:
        facts = self.facts
        return [facts[fid] for fid in fids]

    def vts_of(self, vids: Iterable[int]) -> list[ViewTuple]:
        vts = self.view_tuples
        return [vts[vid] for vid in vids]

    def dependent_ids(self, fid: int) -> tuple[int, ...]:
        """View-tuple IDs whose unique witness contains fact ``fid``."""
        return self.dep_of[fid]

    def witness_ids(self, vid: int) -> tuple[int, ...]:
        """Fact IDs of the unique witness of view tuple ``vid``."""
        return self.wit_of[vid]

    def __repr__(self) -> str:
        return (
            f"CompiledProblem(|D|={self.num_facts}, "
            f"‖V‖={self.num_view_tuples}, ‖ΔV‖={self.num_delta}, "
            f"nnz={len(self.dep_indices)})"
        )


def _csr(rows: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Pack a list of index rows into read-only ``np.int32``
    (offsets, indices) CSR buffers."""
    offsets = np.zeros(len(rows) + 1, dtype=np.int32)
    np.cumsum([len(row) for row in rows], out=offsets[1:])
    indices = np.asarray(
        [index for row in rows for index in row], dtype=np.int32
    )
    return _readonly(offsets), _readonly(indices)


def compile_problem(problem: DeletionPropagationProblem) -> CompiledProblem:
    """Compile ``problem`` into a fresh integer-ID witness arena (see
    :meth:`CompiledProblem.of` for the shared, cached variant)."""
    return CompiledProblem(problem)
