"""Route planning — the static dispatch contract plus learned knobs.

:mod:`repro.core.registry` used to hard-code every dispatch decision:
the route-table order, the forest duel that always runs *both*
candidates, the ILP route's fixed ``norm_v <= 64`` gate, and the
:class:`~repro.core.resilience.SolvePolicy` fallback chain in its
declared order.  This module turns those decisions into a
:class:`RoutePlan` produced by a **router**:

* :class:`StaticRouter` — reproduces today's behaviour exactly: the
  route table's declared order, both duel candidates, the default (or
  ``REPRO_ILP_NORM_V``) ILP threshold, the chain as declared.  This is
  the default and the *cold-start contract*: a learned router with no
  usable trace data must degrade to precisely this plan.
* :class:`LearnedRouter` — fits a transparent cost model from the
  :mod:`repro.core.tracestore` records: instances are bucketed by their
  structural feature key (the profile's boolean flags plus log2 size
  buckets), and per bucket the model keeps per-route latency quantiles,
  forest-duel win counts, and per-method latencies.  A plan for a new
  instance looks up its exact feature key, falls back to the nearest
  recorded key (bounded Hamming + bucket distance), and otherwise
  returns the static plan.  The learned knobs are deliberately narrow —
  routes stay *structurally* gated (an inapplicable algorithm is never
  chosen by statistics):

  - **duel winner**: with enough decided duels in the bucket, the plan
    names the winning candidate family and the duel runs only that
    candidate (the ≥1.3x per-request win of ``BENCH_routing.json``);
  - **ILP threshold**: ``norm_v`` gate raised while observed exact-ILP
    latencies stay within budget, lowered when they blow it;
  - **chain order**: the fallback tail of a policy chain reordered by
    observed median method latency (the requested method stays first).

Selection: an explicit ``router=`` argument beats the ``REPRO_ROUTER``
environment variable beats the ``"static"`` default.  During a dispatch
the active plan travels in a context variable (:func:`plan_scope`) so
the route-table predicates and the duel runner read their knobs without
signature churn — exactly like the ambient deadline.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import statistics
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from repro.errors import SolverError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.session import StructureProfile
    from repro.core.tracestore import TraceStore

__all__ = [
    "DEFAULT_ILP_NORM_V",
    "ILP_NORM_V_ENV",
    "ROUTER_ENV",
    "LearnedRouter",
    "RoutePlan",
    "StaticRouter",
    "active_duel_winner",
    "active_ilp_norm_v",
    "active_plan",
    "env_ilp_norm_v",
    "plan_scope",
    "reset_shared_learned_router",
    "resolve_router",
]

#: ``static`` (default) or ``learned``.
ROUTER_ENV = "REPRO_ROUTER"
#: Overrides the ILP route's ``norm_v`` gate for both routers — the
#: reproducibility escape hatch: with it set, dispatch ignores whatever
#: threshold the cost model learned.
ILP_NORM_V_ENV = "REPRO_ILP_NORM_V"
#: The historical hard-coded gate (see BENCH_ilp_exact: instances up to
#: here answer exactly in single-digit milliseconds).
DEFAULT_ILP_NORM_V = 64

#: Learned ILP thresholds never leave this range: the lower bound keeps
#: the exact route alive for toy instances even after pathological
#: latency samples, the upper bound caps how far a few lucky samples
#: can push an exponential-worst-case solver.
_ILP_MIN, _ILP_MAX = 8, 1024
#: An exact-ILP solve within this budget counts as "fast" when raising
#: the learned threshold; samples over it argue for lowering it.
_ILP_LATENCY_BUDGET_S = 0.25

#: Decided duels required in a feature bucket before the plan dares to
#: skip a candidate, and the win share the leader must hold.
_MIN_DUEL_SAMPLES = 3
_MIN_DUEL_WIN_SHARE = 2 / 3

#: Maximum feature distance for the nearest-profile fallback: one
#: flipped flag or one size-bucket step away still predicts, anything
#: further is a cold start.
_MAX_NEIGHBOR_DISTANCE = 2

_FEATURE_BOOLS = (
    "key_preserving",
    "self_join_free",
    "project_free",
    "single_query",
    "forest_case",
    "dp_tree_applies",
    "balanced",
)
_FEATURE_FLAGS = (
    "head_domination",
    "fd_head_domination",
    "triad",
    "fd_induced_triad",
    "hierarchical",
)
_FEATURE_SIZES = ("norm_v", "norm_delta_v", "max_arity")


def env_ilp_norm_v(default: int = DEFAULT_ILP_NORM_V) -> int:
    """The ``REPRO_ILP_NORM_V`` override, or ``default``.  An unparsable
    value is ignored (dispatch must not crash on a typo'd environment)."""
    raw = os.environ.get(ILP_NORM_V_ENV)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 0 else default


@dataclass(frozen=True)
class RoutePlan:
    """One dispatch's worth of routing decisions, fully inspectable.

    ``order`` is the route-table walk order (names); ``duel_winner``
    names the forest-duel candidate family to run alone (``None`` =
    run both); ``ilp_norm_v`` is the exact-ILP route's ``norm_v`` gate;
    ``chain_hint`` ranks methods by expected latency for
    :meth:`order_chain`.  ``basis`` records how the plan was reached —
    ``repro route explain`` prints it verbatim.
    """

    router: str
    order: tuple[str, ...]
    ilp_norm_v: int = DEFAULT_ILP_NORM_V
    duel_winner: str | None = None
    chain_hint: tuple[str, ...] = ()
    basis: Mapping[str, object] = field(default_factory=dict)

    def order_chain(self, chain: Sequence[str]) -> tuple[str, ...]:
        """Reorder a policy fallback chain by :attr:`chain_hint`.

        The requested method (the chain head) always stays first —
        ordering is a latency optimization of the *fallback tail*, never
        an override of what the caller asked for.  Methods the hint has
        never seen keep their declared relative order, after the ranked
        ones.
        """
        if len(chain) <= 2 or not self.chain_hint:
            return tuple(chain)
        rank = {name: pos for pos, name in enumerate(self.chain_hint)}
        unknown = len(rank)
        tail = sorted(
            enumerate(chain[1:]),
            key=lambda pair: (rank.get(pair[1], unknown), pair[0]),
        )
        return (chain[0], *(name for _, name in tail))

    def explain(self) -> str:
        """A human-readable account of every decision in the plan."""
        lines = [
            f"router: {self.router}",
            f"route order: {' > '.join(self.order)}",
            f"ilp norm_v gate: {self.ilp_norm_v}",
            "forest duel: "
            + (
                f"run only {self.duel_winner}"
                if self.duel_winner
                else "run both candidates"
            ),
        ]
        if self.chain_hint:
            lines.append(f"chain hint: {', '.join(self.chain_hint)}")
        for key in sorted(self.basis):
            lines.append(f"  {key}: {self.basis[key]}")
        return "\n".join(lines)


def _static_order() -> tuple[str, ...]:
    from repro.core.registry import ROUTE_TABLE

    return tuple(route.name for route in ROUTE_TABLE)


class StaticRouter:
    """Today's hard-coded dispatch, expressed as a plan.

    Byte-identical behaviour to the pre-router dispatcher: declared
    route order, both duel candidates, the default (or env-overridden)
    ILP gate, no chain reordering.
    """

    name = "static"

    def plan(self, profile: "StructureProfile | None" = None) -> RoutePlan:
        return RoutePlan(
            router="static",
            order=_static_order(),
            ilp_norm_v=env_ilp_norm_v(),
            basis={"source": "route-table declaration"},
        )


def _candidate_family(method: str) -> str | None:
    """Normalize a duel stage's method label to its candidate family
    (``lowdeg-tree-sweep`` / ``lowdeg-tree(tau=3)`` / the fallback label
    are all one Algorithm 3 family)."""
    label = method[5:] if method.startswith("auto:") else method
    if label.startswith("primal-dual"):
        return "primal-dual"
    if label.startswith("lowdeg-tree"):
        return "lowdeg-tree"
    return None


def _feature_key(features: Mapping[str, object]) -> tuple:
    """The cost model's bucket key: every structural boolean verbatim,
    classifier flags three-valued, sizes as log2 buckets (norm 100 and
    norm 120 should share statistics; norm 8 and norm 800 must not)."""
    key: list[object] = [bool(features.get(name)) for name in _FEATURE_BOOLS]
    for name in _FEATURE_FLAGS:
        value = features.get(name)
        key.append("?" if value is None else bool(value))
    for name in _FEATURE_SIZES:
        key.append(int(features.get(name, 0) or 0).bit_length())
    return tuple(key)


def _key_distance(a: tuple, b: tuple) -> int:
    flags = len(_FEATURE_BOOLS) + len(_FEATURE_FLAGS)
    distance = sum(1 for x, y in zip(a[:flags], b[:flags]) if x != y)
    distance += sum(abs(x - y) for x, y in zip(a[flags:], b[flags:]))
    return distance


class _BucketStats:
    """Per-feature-bucket aggregates of the trace records."""

    __slots__ = ("routes", "methods", "duel_wins", "duel_total")

    def __init__(self) -> None:
        self.routes: dict[str, list[float]] = {}
        self.methods: dict[str, list[float]] = {}
        self.duel_wins: dict[str, int] = {}
        self.duel_total = 0

    def duel_winner(self) -> str | None:
        if self.duel_total < _MIN_DUEL_SAMPLES or not self.duel_wins:
            return None
        family, wins = max(self.duel_wins.items(), key=lambda kv: kv[1])
        if wins / self.duel_total < _MIN_DUEL_WIN_SHARE:
            return None
        return family

    def chain_hint(self) -> tuple[str, ...]:
        ranked = sorted(
            (
                (statistics.median(samples), name)
                for name, samples in self.methods.items()
                if samples
            ),
        )
        return tuple(name for _, name in ranked)

    def route_quantiles(self) -> dict[str, dict[str, float]]:
        out = {}
        for name, samples in sorted(self.routes.items()):
            ordered = sorted(samples)
            out[name] = {
                "n": len(ordered),
                "p50": ordered[len(ordered) // 2],
                "p90": ordered[min(len(ordered) - 1, int(len(ordered) * 0.9))],
            }
        return out


class LearnedRouter:
    """A cost model fit from the trace store, degrading to the static
    plan wherever the data is missing, thin, or ambiguous.

    The model is refit lazily on first use and pinned for the router's
    lifetime (a dispatching process must not change its mind mid-batch);
    :meth:`refit` re-reads the store explicitly.
    """

    name = "learned"

    def __init__(self, store: "TraceStore | None" = None):
        self._store = store
        self._buckets: dict[tuple, _BucketStats] | None = None
        self._ilp_fast: list[int] = []
        self._ilp_slow: list[int] = []
        self._records = 0

    # -- fitting -------------------------------------------------------

    def _resolve_store(self) -> "TraceStore | None":
        if self._store is not None:
            return self._store
        from repro.core.tracestore import default_store

        return default_store()

    def refit(self) -> int:
        """(Re)read the trace store; returns the number of usable
        records."""
        self._buckets = {}
        self._ilp_fast = []
        self._ilp_slow = []
        self._records = 0
        store = self._resolve_store()
        if store is None:
            return 0
        for record in store.records():
            profile = record.get("profile")
            route = record.get("route")
            seconds = record.get("seconds")
            if (
                not isinstance(profile, Mapping)
                or not isinstance(route, str)
                or not isinstance(seconds, (int, float))
            ):
                continue
            self._records += 1
            bucket = self._buckets.setdefault(
                _feature_key(profile), _BucketStats()
            )
            bucket.routes.setdefault(route, []).append(float(seconds))
            for stage in record.get("stages") or ():
                if not isinstance(stage, Mapping):
                    continue
                method = stage.get("method")
                stage_seconds = stage.get("seconds")
                if not isinstance(method, str) or not isinstance(
                    stage_seconds, (int, float)
                ):
                    continue
                bucket.methods.setdefault(method, []).append(
                    float(stage_seconds)
                )
                if route == "forest-duel" and stage.get("chosen"):
                    family = _candidate_family(method)
                    if family is not None:
                        bucket.duel_total += 1
                        bucket.duel_wins[family] = (
                            bucket.duel_wins.get(family, 0) + 1
                        )
            if route in ("exact-ilp", "forced:exact-ilp"):
                norm_v = profile.get("norm_v")
                if isinstance(norm_v, int):
                    if seconds <= _ILP_LATENCY_BUDGET_S:
                        self._ilp_fast.append(norm_v)
                    else:
                        self._ilp_slow.append(norm_v)
        return self._records

    def _fitted(self) -> dict[tuple, _BucketStats]:
        if self._buckets is None:
            self.refit()
        assert self._buckets is not None
        return self._buckets

    # -- planning ------------------------------------------------------

    def _learned_ilp_norm_v(self) -> int:
        threshold = DEFAULT_ILP_NORM_V
        if self._ilp_fast:
            threshold = max(threshold, max(self._ilp_fast))
        if self._ilp_slow:
            threshold = min(threshold, min(self._ilp_slow) - 1)
        return max(_ILP_MIN, min(_ILP_MAX, threshold))

    def _match(
        self, key: tuple
    ) -> tuple[_BucketStats | None, str, int]:
        buckets = self._fitted()
        exact = buckets.get(key)
        if exact is not None:
            return exact, "exact", 0
        best: _BucketStats | None = None
        best_distance = _MAX_NEIGHBOR_DISTANCE + 1
        for other, stats in sorted(buckets.items(), key=lambda kv: kv[0]):
            distance = _key_distance(key, other)
            if distance < best_distance:
                best, best_distance = stats, distance
        if best is None:
            return None, "cold", -1
        return best, "nearest", best_distance

    def plan(self, profile: "StructureProfile | None" = None) -> RoutePlan:
        static = StaticRouter().plan(profile)
        if profile is None:
            return static
        from repro.core.session import profile_to_dict

        bucket, match, distance = self._match(
            _feature_key(profile_to_dict(profile))
        )
        # The env override is absolute; otherwise let the model move the
        # gate within its clamp.
        ilp_norm_v = env_ilp_norm_v(default=self._learned_ilp_norm_v())
        if bucket is None:
            return RoutePlan(
                router="learned",
                order=static.order,
                ilp_norm_v=ilp_norm_v,
                basis={
                    "source": "cold start (no matching trace bucket)",
                    "records": self._records,
                },
            )
        return RoutePlan(
            router="learned",
            order=static.order,
            ilp_norm_v=ilp_norm_v,
            duel_winner=bucket.duel_winner(),
            chain_hint=bucket.chain_hint(),
            basis={
                "source": f"{match} profile match (distance {distance})",
                "records": self._records,
                "duel samples": bucket.duel_total,
                "duel wins": dict(sorted(bucket.duel_wins.items())),
                "route latency quantiles (s)": bucket.route_quantiles(),
            },
        )


#: Shared learned-router cache for name-based resolution: fitting reads
#: the whole store, so per-dispatch construction would turn every auto
#: solve under ``REPRO_ROUTER=learned`` into a full trace-file scan.
#: The cached model is reused until the store's file fingerprint
#: changes *and* the refresh interval has elapsed (an appending
#: dispatcher grows the store on every solve; refitting each time would
#: reintroduce the scan).
_LEARNED_REFRESH_S = 5.0
_SHARED_LEARNED_LOCK = threading.Lock()
_SHARED_LEARNED: dict = {
    "router": None,
    "directory": None,
    "fingerprint": None,
    "fitted_at": 0.0,
}


def _shared_learned_router() -> LearnedRouter:
    from repro.core.tracestore import default_store

    store = default_store()
    if store is None:
        return LearnedRouter(None)  # recording off: permanently cold
    try:
        fingerprint = tuple(
            (str(path), path.stat().st_size) for path in store.paths()
        )
    except OSError:
        fingerprint = None
    with _SHARED_LEARNED_LOCK:
        cached = _SHARED_LEARNED
        now = time.monotonic()
        stale = (
            cached["router"] is None
            or cached["directory"] != store.directory
            or (
                cached["fingerprint"] != fingerprint
                and now - cached["fitted_at"] >= _LEARNED_REFRESH_S
            )
        )
        if stale:
            router = LearnedRouter(store)
            router.refit()
            cached.update(
                router=router,
                directory=store.directory,
                fingerprint=fingerprint,
                fitted_at=now,
            )
        return cached["router"]


def reset_shared_learned_router() -> None:
    """Drop the cached shared learned router (tests that rewrite the
    trace store mid-process call this)."""
    with _SHARED_LEARNED_LOCK:
        _SHARED_LEARNED.update(
            router=None, directory=None, fingerprint=None, fitted_at=0.0
        )


def resolve_router(
    spec: "str | StaticRouter | LearnedRouter | None" = None,
    store: "TraceStore | None" = None,
) -> "StaticRouter | LearnedRouter":
    """The router for one dispatch: an explicit ``spec`` (name or router
    instance) beats :data:`ROUTER_ENV` beats static.

    Resolving the *name* ``"learned"`` without an explicit ``store``
    returns a shared, already-fitted router bound to the default trace
    store (refit when the store files change, throttled) — per-dispatch
    resolution must not re-read the whole store every time.
    """
    if spec is None:
        spec = os.environ.get(ROUTER_ENV) or "static"
    if not isinstance(spec, str):
        return spec
    name = spec.strip().lower()
    if name == "static":
        return StaticRouter()
    if name == "learned":
        if store is not None:
            return LearnedRouter(store)
        return _shared_learned_router()
    raise SolverError(
        f"unknown router {spec!r}; expected 'static' or 'learned'"
    )


# ----------------------------------------------------------------------
# Ambient plan (context-var, mirroring the deadline scope)
# ----------------------------------------------------------------------

_ACTIVE_PLAN: contextvars.ContextVar[RoutePlan | None] = contextvars.ContextVar(
    "repro_active_route_plan", default=None
)


def active_plan() -> RoutePlan | None:
    """The plan governing the current dispatch, or ``None``."""
    return _ACTIVE_PLAN.get()


@contextlib.contextmanager
def plan_scope(plan: RoutePlan | None) -> Iterator[RoutePlan | None]:
    """Install ``plan`` as the ambient route plan for the block."""
    token = _ACTIVE_PLAN.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLAN.reset(token)


def active_ilp_norm_v() -> int:
    """The ILP route gate under the ambient plan (env/default when no
    plan is installed — forced dispatches, bare solver calls)."""
    plan = _ACTIVE_PLAN.get()
    if plan is not None:
        return plan.ilp_norm_v
    return env_ilp_norm_v()


def active_duel_winner() -> str | None:
    """The forest-duel candidate family to run alone, or ``None`` to
    run the full duel."""
    plan = _ACTIVE_PLAN.get()
    return None if plan is None else plan.duel_winner
