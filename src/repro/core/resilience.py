"""Resilient solve runtime — deadlines, retries, and fallback chains.

The ROADMAP's north star is a serving system, and serving systems treat
per-request time bounds and graceful degradation as table stakes: one
adversarial instance (e.g. the Red-Blue Set Cover gadgets behind
Thm 1/Claim 1) must not stall a batch, and a transient infrastructure
failure must not surface as a solver error.  This module is the spine:

* :class:`Deadline` — a monotonic-clock expiry threaded through the
  :class:`~repro.core.session.SolveSession` into the iteration hot
  loops (local search's move loop, exact enumeration, the LowDeg τ
  sweep) as cheap cooperative checkpoints.  A checkpoint that fires
  raises :class:`~repro.errors.DeadlineExceededError` carrying the
  best-so-far *feasible* propagation when the algorithm has one, so a
  timed-out local search degrades to its current incumbent instead of
  failing.
* A context-var **deadline scope** (:func:`deadline_scope` /
  :func:`active_deadline`): solvers never take a deadline parameter —
  they read the ambient one, so every route, baseline, and nested
  helper cooperates without signature churn.  Nested scopes compose by
  taking the tightest deadline.
* :class:`SolvePolicy` — the per-request resilience contract: a
  deadline, a retry count with exponential backoff + jitter for
  transient (non-:class:`~repro.errors.ReproError`) failures, and an
  ordered *fallback chain* of methods (e.g. ``auto → claim1 →
  greedy-min-damage``) tried when a method is inapplicable or errors
  out deterministically.
* :func:`solve_with_policy` — the orchestrator.  It returns the usual
  :class:`~repro.core.registry.SolveReport` with an ``attempts`` trace
  (one :class:`AttemptRecord` per attempt: method tried, outcome,
  retry cause) so ``--trace`` and the batch runner can show exactly how
  an answer was reached — including answers reached by degradation.

With no policy and no deadline scope installed, nothing in this module
runs on the solve path: results are byte-identical to the plain
``registry.solve`` dispatch.
"""

from __future__ import annotations

import contextlib
import contextvars
import random as _random
import time
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.errors import DeadlineExceededError, ReproError, SolverError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.problem import DeletionPropagationProblem
    from repro.core.registry import SolveReport
    from repro.core.session import SolveSession

__all__ = [
    "AttemptRecord",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceededError",
    "EXACT_FALLBACK",
    "SolvePolicy",
    "active_deadline",
    "deadline_scope",
    "derive_backoff_rng",
    "parse_fallback",
    "solve_with_policy",
]

#: The fallback chain behind the first-class exact ILP route: branch &
#: bound covers the shapes HiGHS cannot take (non-key-preserving
#: inputs), and greedy guarantees *an* answer under deadlines too tight
#: for any exact method.  ``SolvePolicy.exact()`` preconfigures it; the
#: CLI accepts the chain as the ``exact-chain`` fallback alias.
EXACT_FALLBACK: tuple[str, ...] = ("exact-bnb", "greedy-min-damage")


class Deadline:
    """A point on the monotonic clock after which solvers must stop.

    Hot loops poll :attr:`expired` (one clock read + compare) at move
    boundaries where their state is consistent, and raise through
    :meth:`check` with their current incumbent.  ``clock`` is
    injectable so tests can drive expiry deterministically.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._clock = clock
        self.expires_at = clock() + seconds

    @classmethod
    def after(
        cls,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def check(self, incumbent: object | None = None, what: str = "solve") -> None:
        """Raise :class:`DeadlineExceededError` if expired.

        ``incumbent`` is attached to the error: the best-so-far feasible
        propagation, or ``None`` when the caller has nothing usable yet.
        """
        if self.expired:
            raise DeadlineExceededError(
                f"deadline exceeded during {what}", incumbent=incumbent
            )

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


def _tightest(a: Deadline | None, b: Deadline | None) -> Deadline | None:
    if a is None:
        return b
    if b is None:
        return a
    return a if a.remaining() <= b.remaining() else b


_ACTIVE_DEADLINE: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro_active_deadline", default=None
)


def active_deadline() -> Deadline | None:
    """The deadline governing the current solve, or ``None``.

    Hot loops read this once at entry (via
    :attr:`SolveSession.deadline <repro.core.session.SolveSession.deadline>`
    or directly) and keep the object in a local; the no-deadline fast
    path stays branch-free.
    """
    return _ACTIVE_DEADLINE.get()


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Install ``deadline`` as the ambient deadline for the block.

    Composes with an enclosing scope by keeping whichever deadline
    expires first; ``None`` leaves the enclosing scope in force.
    Context-var based, so concurrent threads (the planned ΔV
    thread-layer) each see their own deadline.
    """
    effective = _tightest(_ACTIVE_DEADLINE.get(), deadline)
    token = _ACTIVE_DEADLINE.set(effective)
    try:
        yield effective
    finally:
        _ACTIVE_DEADLINE.reset(token)


class CircuitBreaker:
    """A per-route circuit breaker for the serving layer.

    Tracks consecutive *bad* outcomes (degraded answers, timeouts,
    errors) for one route.  After ``threshold`` consecutive failures
    the breaker **opens**: :meth:`allow` answers ``False`` so callers
    stop routing new work at a method that is currently blowing its
    deadlines.  After ``cooldown_seconds`` the breaker goes
    **half-open** and :meth:`allow` admits exactly one probe; the
    probe's outcome closes the breaker (success) or re-opens it with a
    fresh cooldown (failure).

    The state machine is deliberately tiny — three states, one counter
    — because it sits on the request admission path of
    :class:`repro.serve.server.SolveServer`.  ``clock`` is injectable
    (same convention as :class:`Deadline`) so tests drive the cooldown
    deterministically.
    """

    __slots__ = (
        "threshold",
        "cooldown_seconds",
        "_clock",
        "_state",
        "_consecutive_failures",
        "_opened_at",
        "_probe_outstanding",
        "_opens",
    )

    def __init__(
        self,
        threshold: int = 5,
        cooldown_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        self._opens = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` (cooldown
        elapsed, probe admitted or admissible)."""
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            return "half-open"
        return self._state

    def allow(self) -> bool:
        """May a request route here right now?

        ``closed`` always admits.  ``open`` rejects until the cooldown
        elapses, then admits exactly one half-open probe at a time —
        concurrent requests during a probe are rejected so a single
        slow probe cannot re-flood a struggling route.
        """
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probe_outstanding:
            self._state = "half-open"
            self._probe_outstanding = True
            return True
        return False

    def record(self, ok: bool) -> None:
        """Feed one outcome (``ok=False`` for degraded/timeout/error)."""
        if self._state == "half-open":
            self._probe_outstanding = False
            if ok:
                self._state = "closed"
                self._consecutive_failures = 0
            else:
                self._trip()
            return
        if ok:
            self._consecutive_failures = 0
            return
        self._consecutive_failures += 1
        if self._state == "closed" and (
            self._consecutive_failures >= self.threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._probe_outstanding = False
        self._opens += 1

    def retry_after(self) -> float:
        """Seconds until the next half-open probe window (0 when the
        breaker admits traffic) — the serving layer's ``retry_after_ms``
        hint for circuit-open rejections."""
        if self.state != "open":
            return 0.0
        return max(
            0.0,
            self.cooldown_seconds - (self._clock() - self._opened_at),
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "threshold": self.threshold,
            "cooldown_seconds": self.cooldown_seconds,
            "opens": self._opens,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._consecutive_failures}/{self.threshold})"
        )


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt inside a policy-governed solve (or one supervision
    event inside the pool supervisor).

    ``outcome`` values produced by :func:`solve_with_policy`:
    ``"ok"``, ``"retry"`` (transient failure, will retry), ``"error"``
    (transient failures exhausted), ``"inapplicable"`` (deterministic
    solver error — straight to the next fallback), ``"deadline"``
    (deadline hit with no incumbent), ``"degraded"`` (deadline hit,
    incumbent kept).  The pool supervisor adds ``"worker-crash"``,
    ``"worker-timeout"``, ``"pool-lost"``, and ``"serial-fallback"``.
    """

    method: str
    outcome: str
    seconds: float = 0.0
    attempt: int = 0  #: 0-based retry index (or dispatch index for pool events)
    cause: str | None = None
    #: Backoff sleep drawn before the next retry (``"retry"`` records
    #: only) — recorded so a trace pins down the exact jittered delays
    #: of a run and a replay with the same seed reproduces them.
    jitter: float | None = None

    def as_dict(self) -> dict[str, object]:
        return {
            "method": self.method,
            "outcome": self.outcome,
            "seconds": self.seconds,
            "attempt": self.attempt,
            "cause": self.cause,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "AttemptRecord":
        jitter = document.get("jitter")
        return cls(
            method=str(document.get("method", "?")),
            outcome=str(document.get("outcome", "?")),
            seconds=float(document.get("seconds", 0.0)),
            attempt=int(document.get("attempt", 0)),
            cause=document.get("cause"),
            jitter=None if jitter is None else float(jitter),
        )

    def summary(self) -> str:
        cause = f" ({self.cause})" if self.cause else ""
        return (
            f"{self.method} [{self.outcome}] "
            f"try {self.attempt} {self.seconds * 1e3:.2f} ms{cause}"
        )


@dataclass(frozen=True)
class SolvePolicy:
    """The per-request resilience contract.

    * ``deadline_seconds`` — wall-clock bound covering the *whole*
      request (all retries and the full fallback chain share it).
    * ``retries`` — extra attempts per method for transient failures
      (anything that is not a deterministic :class:`ReproError`), with
      exponential backoff ``backoff_seconds · backoff_factor^attempt``
      plus up to ``backoff_jitter`` (a fraction of the backoff) of
      uniform random jitter.
    * ``fallback`` — methods tried, in order, after the requested one
      fails deterministically or errors out of its retry budget.
    """

    deadline_seconds: float | None = None
    retries: int = 0
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    fallback: tuple[str, ...] = ()

    def deadline(self) -> Deadline | None:
        """A fresh :class:`Deadline` for one request (or ``None``)."""
        if self.deadline_seconds is None:
            return None
        return Deadline.after(self.deadline_seconds)

    @classmethod
    def exact(
        cls,
        deadline_seconds: float | None = None,
        retries: int = 0,
        **overrides: object,
    ) -> "SolvePolicy":
        """A policy preconfigured for ``method="exact-ilp"`` requests:
        the :data:`EXACT_FALLBACK` chain behind the ILP, so a request
        degrades branch & bound → greedy instead of erroring when the
        ILP is inapplicable, and an expiring deadline returns the ILP's
        best feasible incumbent (route ``degraded:exact-ilp``)."""
        return cls(
            deadline_seconds=deadline_seconds,
            retries=retries,
            fallback=EXACT_FALLBACK,
            **overrides,  # type: ignore[arg-type]
        )

    def chain(self, method: str) -> tuple[str, ...]:
        """The full method chain: the requested method first, then the
        fallbacks (deduplicated, order preserved)."""
        return tuple(dict.fromkeys((method, *self.fallback)))

    def backoff(self, attempt: int, rng: _random.Random | None = None) -> float:
        """Sleep before retry number ``attempt + 1``.

        The jitter draw comes from ``rng`` so backoff schedules are
        reproducible: :func:`solve_with_policy` always passes one (its
        caller's, or a per-request seeded instance via
        :func:`derive_backoff_rng`).  ``rng=None`` falls back to the
        process-global generator and is only appropriate where
        reproducibility is explicitly not wanted.
        """
        base = self.backoff_seconds * (self.backoff_factor**attempt)
        jitter = (rng.random() if rng is not None else _random.random())
        return base * (1.0 + self.backoff_jitter * jitter)

    def as_dict(self) -> dict[str, object]:
        return {
            "deadline_seconds": self.deadline_seconds,
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "backoff_factor": self.backoff_factor,
            "backoff_jitter": self.backoff_jitter,
            "fallback": list(self.fallback),
        }


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------


def derive_backoff_rng(
    method: str, policy: SolvePolicy, seed: int | None = None
) -> _random.Random:
    """A deterministically seeded RNG for one request's backoff jitter.

    With no explicit ``seed`` the seed is a stable digest (CRC-32, not
    Python's randomized ``hash``) of the request shape — the method and
    the policy contract — so the same request draws the same jitter
    sequence in every process, while distinct requests decorrelate.
    ``seed`` (e.g. the CLI's ``--seed``) overrides the digest.
    """
    if seed is None:
        shape = f"{method}|{sorted(policy.as_dict().items())!r}"
        seed = zlib.crc32(shape.encode("utf-8"))
    return _random.Random(seed)


def solve_with_policy(
    problem: "DeletionPropagationProblem | SolveSession",
    method: str = "auto",
    policy: SolvePolicy | None = None,
    deadline: Deadline | None = None,
    rng: _random.Random | None = None,
    router: object | None = None,
) -> "SolveReport":
    """Solve under a :class:`SolvePolicy` and return the
    :class:`~repro.core.registry.SolveReport` with its ``attempts``
    trace filled in.

    Per method in ``policy.chain(method)``, up to ``1 + policy.retries``
    attempts are made; deterministic :class:`ReproError` failures skip
    the retry budget and fall straight through the chain.  A
    :class:`DeadlineExceededError` carrying an incumbent short-circuits
    everything: the incumbent *is* the answer (route
    ``degraded:<method>``).  Without an incumbent the error propagates —
    the deadline is global, so later chain entries would expire
    immediately anyway.  When the chain is exhausted a
    :class:`SolverError` summarising every attempt is raised (with the
    trace on its ``attempts`` attribute).

    ``router`` resolves a :class:`~repro.core.router.RoutePlan` once per
    request; the plan orders the fallback tail of the chain
    (:meth:`RoutePlan.order_chain`) and rides the plan scope into every
    attempt so ``auto`` chain entries dispatch under it.  With no
    router argument an ambient plan stays in force; a cold plan leaves
    the chain exactly as declared.
    """
    from repro.core.faultinject import maybe_inject
    from repro.core.registry import SolveReport, solve_report
    from repro.core.router import active_plan, plan_scope, resolve_router
    from repro.core.session import SolveSession

    if policy is None:
        policy = SolvePolicy()
    if deadline is None:
        deadline = policy.deadline()
    if rng is None:
        # Never fall through to the process-global generator: backoff
        # jitter must be reproducible per request (and recorded in the
        # attempt trace below).
        rng = derive_backoff_rng(method, policy)
    plan = active_plan() if router is None else None
    if plan is None:
        session = (
            problem
            if isinstance(problem, SolveSession)
            else SolveSession.of(problem)
        )
        plan = resolve_router(router).plan(session.profile)
    attempts: list[AttemptRecord] = []
    last_error: Exception | None = None

    for name in plan.order_chain(policy.chain(method)):
        attempt = 0
        while True:
            if deadline is not None and deadline.expired:
                attempts.append(
                    AttemptRecord(
                        name,
                        "deadline",
                        0.0,
                        attempt,
                        "request deadline exhausted before attempt",
                    )
                )
                error = DeadlineExceededError(
                    f"request deadline exhausted before trying {name!r}"
                )
                error.attempts = attempts
                raise error from last_error
            start = time.perf_counter()
            try:
                with deadline_scope(deadline), plan_scope(plan):
                    maybe_inject("solve", name)
                    report = solve_report(problem, method=name)
            except DeadlineExceededError as exc:
                seconds = time.perf_counter() - start
                if exc.incumbent is not None:
                    attempts.append(
                        AttemptRecord(
                            name, "degraded", seconds, attempt, str(exc)
                        )
                    )
                    session = (
                        problem
                        if isinstance(problem, SolveSession)
                        else SolveSession.of(problem)
                    )
                    return SolveReport(
                        propagation=exc.incumbent,
                        route=f"degraded:{name}",
                        profile=session.profile,
                        trace=[],
                        attempts=attempts,
                    )
                attempts.append(
                    AttemptRecord(name, "deadline", seconds, attempt, str(exc))
                )
                exc.attempts = attempts
                raise
            except ReproError as exc:
                # Deterministic library failure (inapplicable structure,
                # unknown method, infeasible input): retrying cannot
                # help — move down the fallback chain.
                attempts.append(
                    AttemptRecord(
                        name,
                        "inapplicable",
                        time.perf_counter() - start,
                        attempt,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                last_error = exc
                break
            except Exception as exc:
                seconds = time.perf_counter() - start
                last_error = exc
                cause = f"{type(exc).__name__}: {exc}"
                if attempt < policy.retries:
                    delay = policy.backoff(attempt, rng)
                    attempts.append(
                        AttemptRecord(
                            name, "retry", seconds, attempt, cause, jitter=delay
                        )
                    )
                    if deadline is not None:
                        delay = min(delay, max(0.0, deadline.remaining()))
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                    continue
                attempts.append(
                    AttemptRecord(name, "error", seconds, attempt, cause)
                )
                break
            else:
                attempts.append(
                    AttemptRecord(
                        name, "ok", time.perf_counter() - start, attempt
                    )
                )
                report.attempts = attempts
                return report

    detail = "; ".join(
        f"{record.method}: {record.cause}"
        for record in attempts
        if record.cause
    )
    error = SolverError(f"every method in the fallback chain failed ({detail})")
    error.attempts = attempts  # type: ignore[attr-defined]
    raise error from last_error


#: ``--fallback`` aliases expanded by :func:`parse_fallback`.
_FALLBACK_ALIASES: dict[str, tuple[str, ...]] = {
    "exact-chain": EXACT_FALLBACK,
}


def parse_fallback(spec: str | Sequence[str] | None) -> tuple[str, ...]:
    """Normalize a ``--fallback`` CLI value (comma-separated string or
    sequence) into a method tuple, expanding chain aliases (e.g.
    ``exact-chain`` → :data:`EXACT_FALLBACK`)."""
    if spec is None:
        return ()
    if isinstance(spec, str):
        parts = tuple(
            part.strip() for part in spec.split(",") if part.strip()
        )
    else:
        parts = tuple(spec)
    expanded: list[str] = []
    for part in parts:
        expanded.extend(_FALLBACK_ALIASES.get(part, (part,)))
    return tuple(dict.fromkeys(expanded))
