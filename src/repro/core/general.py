"""Claim 1 — the general-case approximation.

Pipeline: reduce the (weighted) view side-effect problem to Red-Blue Set
Cover (:func:`repro.reductions.to_setcover.problem_to_rbsc`), solve with
Peleg's LowDegTwo, and pull the selected covering sets back to source
deletions.  The reduction preserves feasibility and cost, so the RBSC
ratio ``2·sqrt(|C|·log|B|)`` transfers; since every fact involved in the
views defines one covering set, ``|C| ≤ l·‖V‖`` and the ratio becomes
the paper's ``O(2·sqrt(l·‖V‖·log‖ΔV‖))``.
"""

from __future__ import annotations

import math

from repro.core.problem import DeletionPropagationProblem
from repro.core.session import SolveSession
from repro.core.solution import Propagation
from repro.setcover.lowdeg import low_deg_two

__all__ = ["solve_general", "claim1_bound"]


def solve_general(problem: DeletionPropagationProblem) -> Propagation:
    """The Claim 1 approximation (requires key-preserving queries)."""
    session = SolveSession.of(problem)
    if session.profile.empty_delta:
        return Propagation(problem, (), method="claim1-lowdeg")
    # The session memoizes the Claim 1 reduction over the compiled
    # arena: the RBSC solver works over integer view-tuple IDs (raises
    # NotKeyPreservingError exactly like the object path).
    reduction = session.rbsc()
    selection, _ = low_deg_two(reduction.covering)
    facts = reduction.decode(selection)
    return Propagation(problem, facts, method="claim1-lowdeg")


def claim1_bound(problem: DeletionPropagationProblem) -> float:
    """The quoted ratio ``2·sqrt(l·‖V‖·log‖ΔV‖)`` (natural log, with
    degenerate values clamped to 1)."""
    norm_delta = problem.norm_delta_v
    log_term = math.log(norm_delta) if norm_delta > 1 else 1.0
    value = 2.0 * math.sqrt(problem.max_arity * problem.norm_v * log_term)
    return max(1.0, value)
