"""Instance, workload, and solver-run statistics.

Summaries that practitioners look at before running deletion
propagation — view sizes, witness widths, fact fan-out (how many view
tuples a single deletion would take down), and candidate overlap — and
that the benches use to characterize generated workloads.

:func:`solver_statistics` summarizes one solver *run*: the solution's
objective values plus the :class:`~repro.core.oracle.OracleCounters`
perf counters (oracle hits, delta evaluations, full re-evaluations)
when the producing solver ran on the elimination oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.oracle import OracleCounters
from repro.core.problem import DeletionPropagationProblem
from repro.core.session import SolveSession

__all__ = [
    "SolverStatistics",
    "WorkloadStatistics",
    "solver_statistics",
    "workload_statistics",
]


@dataclass(frozen=True)
class WorkloadStatistics:
    """One problem instance, summarized."""

    num_facts: int
    num_queries: int
    norm_v: int
    norm_delta_v: int
    max_arity: int
    view_sizes: Mapping[str, int]
    witness_width_histogram: Mapping[int, int]
    max_fan_out: int
    mean_fan_out: float
    candidate_facts: int
    overlapping_candidates: int
    key_preserving: bool
    forest_case: bool

    def as_rows(self) -> list[dict]:
        """Key/value rows for table rendering."""
        rows = [
            {"statistic": "facts", "value": self.num_facts},
            {"statistic": "queries", "value": self.num_queries},
            {"statistic": "‖V‖", "value": self.norm_v},
            {"statistic": "‖ΔV‖", "value": self.norm_delta_v},
            {"statistic": "l (max arity)", "value": self.max_arity},
            {"statistic": "max fan-out", "value": self.max_fan_out},
            {"statistic": "mean fan-out", "value": round(self.mean_fan_out, 2)},
            {"statistic": "candidate facts", "value": self.candidate_facts},
            {
                "statistic": "multi-view candidates",
                "value": self.overlapping_candidates,
            },
            {"statistic": "key-preserving", "value": self.key_preserving},
            {"statistic": "forest case", "value": self.forest_case},
        ]
        return rows


@dataclass(frozen=True)
class SolverStatistics:
    """One solver run, summarized: outcome plus oracle perf counters."""

    method: str
    deleted_facts: int
    feasible: bool
    side_effect: float
    balanced_cost: float
    oracle_hits: int
    delta_evaluations: int
    full_reevaluations: int

    def as_rows(self) -> list[dict]:
        """Key/value rows for table rendering."""
        return [
            {"statistic": "method", "value": self.method},
            {"statistic": "|ΔD|", "value": self.deleted_facts},
            {"statistic": "feasible", "value": self.feasible},
            {"statistic": "side-effect", "value": round(self.side_effect, 6)},
            {
                "statistic": "balanced cost",
                "value": round(self.balanced_cost, 6),
            },
            {"statistic": "oracle hits", "value": self.oracle_hits},
            {"statistic": "delta evaluations", "value": self.delta_evaluations},
            {
                "statistic": "full re-evaluations",
                "value": self.full_reevaluations,
            },
        ]

    def as_dict(self) -> dict:
        return {row["statistic"]: row["value"] for row in self.as_rows()}


def solver_statistics(solution) -> SolverStatistics:
    """Summarize one solver run.

    Accepts a :class:`~repro.core.solution.Propagation` or a
    :class:`~repro.core.registry.SolveReport` (the report's winning
    propagation is summarized).  Solutions produced without the oracle
    report zeroed counters.
    """
    solution = getattr(solution, "propagation", solution)
    counters = solution.counters
    if not isinstance(counters, OracleCounters):
        counters = OracleCounters()
    return SolverStatistics(
        method=solution.method,
        deleted_facts=len(solution.deleted_facts),
        feasible=solution.is_feasible(),
        side_effect=solution.side_effect(),
        balanced_cost=solution.balanced_cost(),
        oracle_hits=counters.oracle_hits,
        delta_evaluations=counters.delta_evaluations,
        full_reevaluations=counters.full_reevaluations,
    )


def workload_statistics(
    problem: DeletionPropagationProblem,
) -> WorkloadStatistics:
    """Compute all statistics for one problem.  The structural flags
    come from the problem's session profile, so they are computed at
    most once across statistics and dispatch."""
    profile = SolveSession.of(problem).profile
    view_sizes = {view.name: len(view) for view in problem.views}
    width_histogram: dict[int, int] = {}
    fan_out: dict = {}
    for vt in problem.all_view_tuples():
        for witness in problem.witnesses(vt):
            width_histogram[len(witness)] = (
                width_histogram.get(len(witness), 0) + 1
            )
            for fact in witness:
                fan_out[fact] = fan_out.get(fact, 0) + 1
    candidates = problem.candidate_facts()
    overlapping = 0
    for fact in candidates:
        views_touched = {vt.view for vt in problem.dependents(fact)}
        if len(views_touched) > 1:
            overlapping += 1
    return WorkloadStatistics(
        num_facts=len(problem.instance),
        num_queries=len(problem.queries),
        norm_v=problem.norm_v,
        norm_delta_v=problem.norm_delta_v,
        max_arity=problem.max_arity,
        view_sizes=view_sizes,
        witness_width_histogram=dict(sorted(width_histogram.items())),
        max_fan_out=max(fan_out.values(), default=0),
        mean_fan_out=(
            sum(fan_out.values()) / len(fan_out) if fan_out else 0.0
        ),
        candidate_facts=len(candidates),
        overlapping_candidates=overlapping,
        key_preserving=profile.key_preserving,
        forest_case=profile.forest_case,
    )
