"""Lemma 1 — the balanced-case approximation.

Pipeline: reduce balanced deletion propagation to Positive-Negative
Partial Set Cover, solve via Miettinen's reduction to RBSC plus
LowDegTwo, pull back.  The transferred ratio is the paper's
``2·sqrt(l·(‖V‖+‖ΔV‖)·log‖ΔV‖)``.

The pulled-back deletion set is loaded into an
:class:`~repro.core.oracle.EliminationOracle` and finished with a
drop-only polish: any fact whose removal does not increase the balanced
cost is dropped, each trial answered in O(dependents) delta time.  The
set-cover detour can select redundant facts (escape sets overlap real
covering sets); dropping them never worsens the objective, so the
Lemma 1 ratio is preserved.
"""

from __future__ import annotations

import math

from repro.core.oracle import EliminationOracle, OracleCounters
from repro.core.problem import BalancedDeletionPropagationProblem
from repro.core.session import SolveSession
from repro.core.solution import Propagation
from repro.setcover.posneg import solve_posneg_lowdeg

__all__ = ["solve_balanced", "lemma1_bound"]

_MAX_POLISH_ROUNDS = 50


def solve_balanced(
    problem: BalancedDeletionPropagationProblem,
    counters: OracleCounters | None = None,
) -> Propagation:
    """The Lemma 1 approximation (requires key-preserving queries)."""
    session = SolveSession.of(problem)
    if session.profile.empty_delta:
        return Propagation(problem, (), method="lemma1-posneg")
    # The session memoizes the Lemma 1 reduction over the compiled
    # arena (integer view-tuple IDs end-to-end in the PN-PSC → RBSC
    # pipeline).
    reduction = session.posneg()
    selection, _ = solve_posneg_lowdeg(reduction.covering)
    facts = reduction.decode(selection)
    oracle = EliminationOracle(problem, facts, counters=counters)
    cost = oracle.balanced_cost()
    for _ in range(_MAX_POLISH_ROUNDS):
        improved = False
        for fact in sorted(oracle.deleted_facts):
            trial = oracle.objective_if_removed(fact)
            if trial <= cost:
                oracle.remove(fact)
                cost = trial
                improved = True
        if not improved:
            break
    return oracle.to_propagation(method="lemma1-posneg")


def lemma1_bound(problem: BalancedDeletionPropagationProblem) -> float:
    """The quoted ratio ``2·sqrt(l·(‖V‖+‖ΔV‖)·log‖ΔV‖)``."""
    norm_delta = problem.norm_delta_v
    log_term = math.log(norm_delta) if norm_delta > 1 else 1.0
    value = 2.0 * math.sqrt(
        problem.max_arity * (problem.norm_v + norm_delta) * log_term
    )
    return max(1.0, value)
