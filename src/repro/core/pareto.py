"""The source/view trade-off: Pareto-optimal repairs.

Tables II–III price a repair by the number of *source* deletions,
Tables IV–V by the *view* side-effect; real cleaning tools care about
both.  :func:`pareto_front` enumerates the Pareto-optimal trade-off
curve: for every feasible deletion budget ``k`` (from the minimum
hitting-set size upward) it computes the minimum view side-effect via
the bounded exact solver and keeps the non-dominated ``(deletions,
side_effect)`` points.

The curve is finite — it stops as soon as the unbounded optimum's
side-effect is reached, since more deletions can never help below it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounded import minimum_deletion_size, solve_bounded_exact
from repro.core.exact import solve_exact
from repro.core.problem import DeletionPropagationProblem
from repro.core.solution import Propagation

__all__ = ["ParetoPoint", "pareto_front"]


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated repair on the trade-off curve."""

    deletions: int
    side_effect: float
    solution: Propagation

    def dominates(self, other: "ParetoPoint") -> bool:
        return (
            self.deletions <= other.deletions
            and self.side_effect <= other.side_effect
            and (
                self.deletions < other.deletions
                or self.side_effect < other.side_effect
            )
        )


def pareto_front(
    problem: DeletionPropagationProblem, max_budget: int | None = None
) -> list[ParetoPoint]:
    """The Pareto-optimal ``(|ΔD|, side_effect)`` points, by increasing
    deletion budget.

    ``max_budget`` caps the sweep (default: the candidate-fact count).
    Empty ΔV yields the single point ``(0, 0)``.
    """
    if problem.deletion.is_empty():
        return [
            ParetoPoint(0, 0.0, Propagation(problem, (), method="pareto"))
        ]
    k_min = minimum_deletion_size(problem)
    unbounded = solve_exact(problem)
    floor = unbounded.side_effect()
    budget_cap = (
        max_budget
        if max_budget is not None
        else len(problem.candidate_facts())
    )
    points: list[ParetoPoint] = []
    best_so_far = float("inf")
    for k in range(k_min, max(k_min, budget_cap) + 1):
        solution = solve_bounded_exact(problem, k)
        cost = solution.side_effect()
        if cost < best_so_far - 1e-12:
            best_so_far = cost
            points.append(
                ParetoPoint(len(solution.deleted_facts), cost, solution)
            )
        if best_so_far <= floor + 1e-12:
            break
    # The recorded points are non-dominated by construction (strictly
    # decreasing side-effect at non-decreasing budget); assert anyway.
    for i, a in enumerate(points):
        for b in points[i + 1 :]:
            assert not a.dominates(b) and not b.dominates(a)
    return points
