"""Parallel solver portfolios over one compiled problem.

The compiled witness arena (:mod:`repro.core.arena`) makes single
strategies cheap; this module spends the freed budget on *breadth*: run
several solving strategies on the same problem concurrently and keep
the best feasible propagation, or push a batch of ΔV requests against
one shared instance through worker processes.

Processes, not threads — the solvers are pure Python and hold the GIL,
so ``ProcessPoolExecutor`` is the only way the strategies actually
overlap.  The problem reaches the workers through two channels:

* **Shared memory** (the fast path): the parent exports its compiled
  arena once (:meth:`repro.core.session.SolveSession.export_shm`) and
  ships only the manifest — a small dict naming the segment — through
  the pool initializer.  Workers attach the slabs in place
  (:func:`repro.core.shm.attach_session`), skipping query evaluation,
  arena compilation, and the pivot search entirely.
* **The JSON document** (the fallback): when the problem has no arena
  (non-key-preserving), the platform lacks POSIX shared memory, or the
  segment vanished before the worker attached, the worker reconstructs
  from :func:`repro.io.serialize.problem_to_dict` output and compiles
  locally.  Both channels produce bitwise-identical arenas, so this is
  a latency knob, never a semantics knob.

Either way the problem is cached in the worker process for the rest of
the pool's lifetime — the classic compile-once solve-many layout, one
attach (or compile) per worker instead of one per task.  The document
itself is cached on the parent's session, so repeated batches against
one instance serialize it once, and serial in-process runs skip the
doc round-trip entirely.
Workers return plain ``(relation, values)`` pairs; the parent rebuilds
:class:`~repro.core.solution.Propagation` objects against its own
problem, so the public surface stays object-level.

The pool is **supervised** rather than fire-and-forget: tasks run as
individual futures with per-task timeouts instead of one opaque
``pool.map`` (whose lazy iterator used to let ``BrokenProcessPool``
escape mid-iteration and take every completed result down with it).
The supervisor in :func:`_run_supervised`:

* keeps every result completed before a failure — a crashed worker
  loses at most its own in-flight tasks;
* detects worker crashes (``BrokenProcessPool``), respawns the pool a
  bounded number of times, and re-dispatches only the lost tasks;
* dispatches at most ``max_workers`` tasks at a time, so a task's
  hang-detection clock starts when a worker slot is free for it — a
  task queued behind a full pool is never declared hung while waiting
  for its turn;
* reclaims **hung** tasks: when a :class:`SolvePolicy` deadline is in
  force, a task overdue past the deadline plus a small grace gets its
  pool killed (``SIGKILL`` — a hung worker ignores cooperative
  deadlines by definition) and is re-dispatched on a fresh pool;
* applies a per-task dispatch budget: a task that keeps hanging
  becomes a timeout-error outcome (running it serially would hang the
  parent), a task implicated in worker crashes gets one last dispatch
  on an isolated single-worker *quarantine* pool — an innocent
  casualty of a shared pool loss recovers its result there, while a
  task that deterministically kills its worker breaks only the
  throwaway pool and becomes an error outcome instead of being re-run
  in the parent process (where a segfault or ``os._exit`` would take
  down the whole batch); only tasks never implicated in a process
  death fall back to an in-process serial run;
* records every supervision event as an
  :class:`~repro.core.resilience.AttemptRecord` on the task's outcome,
  so ``--trace`` shows crashes, timeouts, and re-dispatches.

When the pool cannot be used at all (``max_workers=0``, a single
strategy, or an executor that fails to start — e.g. a sandbox without
process semaphores) the same work runs serially in-process with
identical results; the portfolio is a throughput knob, never a
semantics knob.

Exposed on the command line as ``python -m repro.cli solve
--portfolio`` and used by ``benchmarks/run_all.py``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import SolverError
from repro.relational.tuples import Fact
from repro.core.problem import DeletionPropagationProblem
from repro.core.resilience import AttemptRecord, SolvePolicy
from repro.core.solution import Propagation

__all__ = [
    "DEFAULT_PORTFOLIO",
    "PortfolioResult",
    "DeltaOutcome",
    "run_portfolio",
    "solve_portfolio",
    "run_delta_batch",
]

#: Strategies tried by default: the paper's general-case approximation
#: plus the two greedy baselines — all polynomial, all feasible on
#: key-preserving problems, frequently incomparable on quality.
DEFAULT_PORTFOLIO: tuple[str, ...] = (
    "claim1",
    "greedy-min-damage",
    "greedy-max-coverage",
)

#: Extra dispatches granted to a task lost to a crashed or hung worker
#: before the supervisor stops re-dispatching it.
_LOST_RETRIES = 1

#: Pool respawns tolerated per run before everything still pending
#: degrades (serially for crash losses, timeout-error for hangs).
_MAX_RESPAWNS = 3

#: Slack added to the policy deadline before a task is declared hung:
#: covers result pickling and queue latency so a task that finished
#: exactly at its cooperative deadline is not killed while its result
#: is in flight.
_TIMEOUT_GRACE = 0.5

#: ``(key, wall_seconds, facts_payload | None, error | None,
#: attempt_dicts, route | None)`` — what worker tasks and their serial
#: twins return.  ``route`` is the dispatch route the report took
#: (``forced:<method>``, a route-table name, ``degraded:<method>``), so
#: the serve tier's per-route histogram sees pool runs too.
RawOutcome = tuple[object, float, list | None, str | None, list, str | None]


@dataclass(frozen=True)
class PortfolioResult:
    """One strategy's outcome inside a portfolio run.

    ``attempts`` is the resilience trace: policy attempts made inside
    the worker plus any supervision events (crash, timeout,
    re-dispatch) observed by the parent.  Empty for an undisturbed
    run without a policy.
    """

    method: str
    propagation: Propagation | None
    wall_seconds: float
    error: str | None = None
    attempts: tuple[AttemptRecord, ...] = ()
    route: str | None = None  #: dispatch route taken (None on failure)

    @property
    def ok(self) -> bool:
        return self.propagation is not None


@dataclass(frozen=True)
class DeltaOutcome:
    """One ΔV request's outcome inside a batch run.

    ``propagation`` is bound to a problem variant carrying the request's
    own ΔV; ``error`` carries the failure text when the request could
    not be solved (unknown view tuple, solver error, ...).  Exactly one
    of the two is set.  ``attempts`` is the resilience trace (see
    :class:`PortfolioResult`).
    """

    index: int
    method: str
    propagation: Propagation | None
    wall_seconds: float
    error: str | None = None
    attempts: tuple[AttemptRecord, ...] = ()
    route: str | None = None  #: dispatch route taken (None on failure)

    @property
    def ok(self) -> bool:
        return self.propagation is not None


# ----------------------------------------------------------------------
# Worker-side machinery (module-level so the pool can pickle it)
# ----------------------------------------------------------------------

_WORKER_DOC: Mapping[str, Any] | None = None
_WORKER_MANIFEST: Mapping[str, Any] | None = None
_WORKER_PROBLEM: DeletionPropagationProblem | None = None


def _init_worker(
    doc: Mapping[str, Any], manifest: Mapping[str, Any] | None = None
) -> None:
    global _WORKER_DOC, _WORKER_MANIFEST, _WORKER_PROBLEM
    _WORKER_DOC = doc
    _WORKER_MANIFEST = manifest
    _WORKER_PROBLEM = None


def _prime_session(problem: DeletionPropagationProblem):
    """Build the problem's shared :class:`SolveSession` eagerly: the
    structure profile plus, on key-preserving instances, the compiled
    witness arena.  Every subsequent ΔV rebind then reuses the compiled
    base (delta slices only) instead of recompiling per request."""
    from repro.core.session import SolveSession

    session = SolveSession.of(problem)
    if session.profile.key_preserving:
        session.arena
    return session


def _worker_problem() -> DeletionPropagationProblem:
    """Attach (once) to the parent's shared-memory export — or, when no
    manifest was shipped or its segment is gone, reconstruct from the
    JSON document — then prime and cache the problem in this worker."""
    global _WORKER_MANIFEST, _WORKER_PROBLEM
    if _WORKER_PROBLEM is None:
        if _WORKER_MANIFEST is not None:
            from repro.core.shm import ShmError, attach_session

            try:
                _WORKER_PROBLEM = attach_session(_WORKER_MANIFEST).problem
                return _WORKER_PROBLEM
            except ShmError:
                # Segment unlinked between export and attach (parent
                # session closed early): compile from the doc instead.
                _WORKER_MANIFEST = None
        from repro.io.serialize import problem_from_dict

        problem = problem_from_dict(_WORKER_DOC)
        _prime_session(problem)
        _WORKER_PROBLEM = problem
    return _WORKER_PROBLEM


def _facts_payload(propagation: Propagation) -> list[tuple[str, tuple]]:
    return [
        (fact.relation, fact.values)
        for fact in sorted(propagation.deleted_facts)
    ]


def _error_attempts(exc: Exception) -> list[dict]:
    """The policy attempt trace attached to a failed solve, as plain
    dicts (they cross the process boundary)."""
    records = getattr(exc, "attempts", None) or []
    return [record.as_dict() for record in records]


def _solve_method_task(
    method: str, policy: SolvePolicy | None = None
) -> RawOutcome:
    """Worker task: solve the cached problem with one strategy."""
    from repro.core.faultinject import maybe_inject
    from repro.core.registry import solve_report

    start = time.perf_counter()
    try:
        maybe_inject("portfolio", method)
        report = solve_report(_worker_problem(), method=method, policy=policy)
    except Exception as exc:  # travel as text; solver errors are data here
        return (
            method,
            time.perf_counter() - start,
            None,
            f"{type(exc).__name__}: {exc}",
            _error_attempts(exc),
            None,
        )
    return (
        method,
        time.perf_counter() - start,
        _facts_payload(report.propagation),
        None,
        [record.as_dict() for record in report.attempts],
        report.route,
    )


def _solve_delta_task(
    index: int,
    deletions: Mapping[str, list],
    method: str,
    policy: SolvePolicy | None = None,
) -> RawOutcome:
    """Worker task: solve one ΔV request against the cached instance.

    The base problem is reconstructed once per worker (compile-once) and
    each request rebinds only the ΔV via
    :meth:`~repro.core.problem.DeletionPropagationProblem.with_deletions`
    — no per-task document parse, no view re-materialization.
    """
    from repro.core.faultinject import maybe_inject
    from repro.core.registry import solve_report

    start = time.perf_counter()
    try:
        maybe_inject("delta", index)
        problem = _worker_problem().with_deletions(deletions)
        report = solve_report(problem, method=method, policy=policy)
    except Exception as exc:
        return (
            index,
            time.perf_counter() - start,
            None,
            f"{type(exc).__name__}: {exc}",
            _error_attempts(exc),
            None,
        )
    return (
        index,
        time.perf_counter() - start,
        _facts_payload(report.propagation),
        None,
        [record.as_dict() for record in report.attempts],
        report.route,
    )


# ----------------------------------------------------------------------
# Pool supervisor
# ----------------------------------------------------------------------


@dataclass
class _Task:
    """Supervisor bookkeeping for one unit of pool work."""

    key: object  #: method name or request index (the raw outcome's key)
    fn: Callable[..., RawOutcome]
    args: tuple
    serial: Callable[[], RawOutcome]  #: in-parent twin for crash fallback
    dispatches: int = 0
    timed_out: bool = False
    crashed: bool = False  #: saw its worker process die at least once
    events: list[AttemptRecord] = field(default_factory=list)

    def record(self, outcome: str, cause: str) -> None:
        self.events.append(
            AttemptRecord(
                method=str(self.key),
                outcome=outcome,
                attempt=self.dispatches - 1,
                cause=cause,
            )
        )

    def merged(self, raw: RawOutcome) -> RawOutcome:
        """Prepend this task's supervision events to a raw outcome's
        attempt trace."""
        if not self.events:
            return raw
        key, seconds, payload, error, attempts, route = raw
        events = [record.as_dict() for record in self.events]
        return key, seconds, payload, error, events + list(attempts), route


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when a worker is hung: a plain shutdown
    joins worker processes, which never happens for a worker stuck in a
    non-cooperative call, so kill first.

    ``ProcessPoolExecutor`` does not expose its worker processes, so
    this reaches into the private ``_processes`` dict (stable CPython
    3.7–3.13; ``tests/core/test_portfolio.py`` asserts it exists so an
    interpreter upgrade that renames it fails loudly instead of
    silently leaking hung workers)."""
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.kill()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _timeout_outcome(task: _Task, task_timeout: float) -> RawOutcome:
    return task.merged(
        (
            task.key,
            task_timeout,
            None,
            f"task exceeded its {task_timeout:.3f}s dispatch timeout "
            f"{task.dispatches} time(s)",
            [],
            None,
        )
    )


def _crash_outcome(task: _Task, cause: str) -> RawOutcome:
    return task.merged(
        (
            task.key,
            0.0,
            None,
            f"task lost its worker process in {task.dispatches} "
            f"dispatch(es) ({cause}); refusing in-process re-run of a "
            "crash suspect",
            [],
            None,
        )
    )


def _run_quarantined(
    doc: Mapping[str, Any],
    task: _Task,
    task_timeout: float | None,
    manifest: Mapping[str, Any] | None = None,
) -> RawOutcome:
    """Last dispatch for a crash-lost task, on an isolated
    single-worker pool.

    A task whose shared pool broke may be the crasher or an innocent
    bystander (``BrokenProcessPool`` hits every in-flight future, not
    just the culprit's).  Re-running it here sorts the two apart
    without risking the parent: an innocent task completes and keeps
    its result; a task that deterministically kills its worker breaks
    only this throwaway pool and is finalized as an error outcome —
    never re-executed in the parent process, where a segfault or
    ``os._exit`` would kill the whole batch.
    """
    task.dispatches += 1
    task.record("quarantine", "dispatch budget exhausted")
    try:
        pool = ProcessPoolExecutor(
            max_workers=1, initializer=_init_worker, initargs=(doc, manifest)
        )
    except (OSError, PermissionError):
        task.dispatches -= 1
        return _crash_outcome(task, "no process primitives for quarantine")
    try:
        raw = pool.submit(task.fn, *task.args).result(timeout=task_timeout)
    except FuturesTimeoutError:
        task.timed_out = True
        _kill_pool(pool)
        return _timeout_outcome(task, task_timeout or 0.0)
    except Exception as exc:
        _kill_pool(pool)
        return _crash_outcome(task, f"{type(exc).__name__}: {exc}")
    pool.shutdown()
    return task.merged(raw)


def _run_supervised(
    doc: Mapping[str, Any],
    tasks: Sequence[_Task],
    max_workers: int,
    task_timeout: float | None,
    manifest: Mapping[str, Any] | None = None,
) -> list[RawOutcome]:
    """Run ``tasks`` on a supervised process pool; one outcome per task.

    See the module docstring for the recovery contract.  ``task_timeout``
    of ``None`` disables hang detection (there is no deadline to judge
    "hung" against).
    """
    results: dict[int, RawOutcome] = {}
    pending: list[tuple[int, _Task]] = list(enumerate(tasks))
    budget = 1 + _LOST_RETRIES
    respawns = 0

    def finalize_lost(slot: int, task: _Task) -> None:
        """A task out of dispatch budget (or out of pool respawns)."""
        if task.timed_out:
            # Serially re-running a hanger would hang the parent.
            results[slot] = _timeout_outcome(task, task_timeout or 0.0)
        elif task.crashed:
            # Re-running a crash suspect in the parent process could
            # kill the parent; quarantine it on a throwaway pool.
            results[slot] = _run_quarantined(
                doc, task, task_timeout, manifest=manifest
            )
        else:
            task.record("serial-fallback", "dispatch budget exhausted")
            results[slot] = task.merged(task.serial())

    def requeue(slot: int, task: _Task, outcome: str, cause: str) -> None:
        task.record(outcome, cause)
        if task.dispatches < budget:
            pending.append((slot, task))
        else:
            finalize_lost(slot, task)

    while pending:
        if respawns > _MAX_RESPAWNS:
            for slot, task in pending:
                finalize_lost(slot, task)
            break
        try:
            pool = ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_init_worker,
                initargs=(doc, manifest),
            )
        except (OSError, PermissionError):
            # No usable process primitives (restricted sandboxes): same
            # work, same results, one process.
            for slot, task in pending:
                results[slot] = task.merged(task.serial())
            break

        in_flight: dict[Any, tuple[int, _Task]] = {}
        expiry: dict[Any, float | None] = {}
        queue, pending = pending, []
        broken = False

        def dispatch() -> bool:
            """Submit queued tasks while worker slots are free.

            At most ``max_workers`` tasks are in flight at once, so the
            hang-detection expiry armed here starts when the task can
            actually execute — a task queued behind a full pool is not
            on the clock while it waits for a slot.  Returns ``False``
            (pool unusable) on a failed submit, leaving the failing
            task and everything still queued for the next pool with
            their dispatch budgets untouched.
            """
            while queue and len(in_flight) < max_workers:
                slot, task = queue.pop(0)
                task.dispatches += 1
                try:
                    future = pool.submit(task.fn, *task.args)
                except Exception:
                    # This dispatch never started.
                    task.dispatches -= 1
                    queue.insert(0, (slot, task))
                    return False
                in_flight[future] = (slot, task)
                expiry[future] = (
                    time.monotonic() + task_timeout
                    if task_timeout is not None
                    else None
                )
            return True

        broken = not dispatch()
        while in_flight and not broken:
            poll: float | None = None
            if task_timeout is not None:
                poll = max(
                    0.0, min(expiry.values()) - time.monotonic()
                )
            done, _ = wait(
                set(in_flight), timeout=poll, return_when=FIRST_COMPLETED
            )
            for future in done:
                slot, task = in_flight.pop(future)
                del expiry[future]
                try:
                    results[slot] = task.merged(future.result())
                except BrokenProcessPool:
                    broken = True
                    task.crashed = True
                    requeue(
                        slot, task, "worker-crash", "worker process died"
                    )
                except Exception as exc:
                    # Tasks catch their own exceptions, so anything here
                    # is infrastructure (pickling, cancellation): treat
                    # like a crash, but do not mark the task a crash
                    # suspect — no worker process died, so an in-parent
                    # serial re-run stays safe.
                    broken = True
                    requeue(
                        slot,
                        task,
                        "worker-crash",
                        f"{type(exc).__name__}: {exc}",
                    )
            if broken:
                break
            if task_timeout is not None:
                now = time.monotonic()
                overdue = [
                    future
                    for future, when in expiry.items()
                    if when is not None and when <= now
                ]
                for future in overdue:
                    slot, task = in_flight.pop(future)
                    del expiry[future]
                    task.timed_out = True
                    broken = True
                    requeue(
                        slot,
                        task,
                        "worker-timeout",
                        f"no result after {task_timeout:.3f}s",
                    )
                if broken:
                    break
            if not dispatch():
                broken = True
                break

        if broken:
            # Innocent in-flight tasks are casualties of the pool loss:
            # their dispatch is spent, but they go back in the queue.
            # Tasks still queued never dispatched on this pool — they
            # carry over untouched, losing neither budget nor results.
            for future, (slot, task) in in_flight.items():
                requeue(slot, task, "pool-lost", "pool recycled")
            pending.extend(queue)
            respawns += 1
            _kill_pool(pool)
        else:
            pool.shutdown()

    return [results[slot] for slot in sorted(results)]


def _policy_task_timeout(policy: SolvePolicy | None) -> float | None:
    if policy is None or policy.deadline_seconds is None:
        return None
    return policy.deadline_seconds + _TIMEOUT_GRACE


def _session_manifest(session) -> dict | None:
    """Best-effort shared-memory export of the session's compiled state.

    Returns the manifest workers attach by, or ``None`` when the fast
    path is unavailable — no arena (non-key-preserving problem) or no
    usable POSIX shared memory (restricted sandboxes).  ``None`` simply
    routes workers through the JSON-document fallback; results are
    identical either way.
    """
    if not session.profile.key_preserving:
        return None
    try:
        return session.export_shm()
    except Exception:
        return None


# ----------------------------------------------------------------------
# Parent-side API
# ----------------------------------------------------------------------


def _rebuild(
    problem: DeletionPropagationProblem,
    method: str,
    payload: list[tuple[str, tuple]],
) -> Propagation:
    facts = [Fact(relation, values) for relation, values in payload]
    return Propagation(problem, facts, method=method)


def _attempt_records(attempts: Iterable[dict]) -> tuple[AttemptRecord, ...]:
    return tuple(AttemptRecord.from_dict(doc) for doc in attempts)


def _solve_method_serial(
    problem: DeletionPropagationProblem,
    method: str,
    policy: SolvePolicy | None = None,
) -> RawOutcome:
    """In-process twin of :func:`_solve_method_task` bound to an
    explicit problem (must not touch the worker-global cache)."""
    from repro.core.registry import solve_report

    start = time.perf_counter()
    try:
        report = solve_report(problem, method=method, policy=policy)
    except Exception as exc:
        return (
            method,
            time.perf_counter() - start,
            None,
            f"{type(exc).__name__}: {exc}",
            _error_attempts(exc),
            None,
        )
    return (
        method,
        time.perf_counter() - start,
        _facts_payload(report.propagation),
        None,
        [record.as_dict() for record in report.attempts],
        report.route,
    )


def _run_serial(
    problem: DeletionPropagationProblem,
    methods: Sequence[str],
    policy: SolvePolicy | None = None,
) -> list[PortfolioResult]:
    results: list[PortfolioResult] = []
    for method in methods:
        _, seconds, payload, error, attempts, route = _solve_method_serial(
            problem, method, policy
        )
        if payload is None:
            results.append(
                PortfolioResult(
                    method,
                    None,
                    seconds,
                    error,
                    attempts=_attempt_records(attempts),
                )
            )
        else:
            results.append(
                PortfolioResult(
                    method,
                    _rebuild(problem, method, payload),
                    seconds,
                    attempts=_attempt_records(attempts),
                    route=route,
                )
            )
    return results


def run_portfolio(
    problem: DeletionPropagationProblem,
    methods: Sequence[str] = DEFAULT_PORTFOLIO,
    max_workers: int | None = None,
    policy: SolvePolicy | None = None,
) -> list[PortfolioResult]:
    """Solve ``problem`` with every strategy in ``methods``.

    Strategies run in a supervised process pool when ``max_workers``
    permits (default: one worker per strategy, capped at the CPU count)
    and serially otherwise.  ``policy`` applies the full resilience
    contract to every strategy: its deadline also arms the supervisor's
    hang detection (deadline + grace per dispatch).  Returns one
    :class:`PortfolioResult` per strategy in input order; strategies
    that raised carry their error text instead of a propagation.
    """
    methods = list(dict.fromkeys(methods))  # dedupe, keep order
    if not methods:
        raise SolverError("portfolio needs at least one method")
    if max_workers is None:
        max_workers = min(len(methods), os.cpu_count() or 1)
    if max_workers <= 0 or len(methods) == 1:
        return _run_serial(problem, methods, policy=policy)

    session = _prime_session(problem)
    doc = session.document
    manifest = _session_manifest(session)
    tasks = [
        _Task(
            key=method,
            fn=_solve_method_task,
            args=(method, policy),
            serial=(
                lambda method=method: _solve_method_serial(
                    problem, method, policy
                )
            ),
        )
        for method in methods
    ]
    raw = _run_supervised(
        doc,
        tasks,
        max_workers=max_workers,
        task_timeout=_policy_task_timeout(policy),
        manifest=manifest,
    )

    by_method = {outcome[0]: outcome for outcome in raw}
    results: list[PortfolioResult] = []
    for method in methods:
        _, seconds, payload, error, attempts, route = by_method[method]
        if payload is None:
            results.append(
                PortfolioResult(
                    method,
                    None,
                    seconds,
                    error,
                    attempts=_attempt_records(attempts),
                )
            )
        else:
            results.append(
                PortfolioResult(
                    method,
                    _rebuild(problem, method, payload),
                    seconds,
                    attempts=_attempt_records(attempts),
                    route=route,
                )
            )
    return results


def best_result(results: Iterable[PortfolioResult]) -> PortfolioResult:
    """The winning entry: best objective, then fewest deletions, then
    method name (deterministic across pool scheduling orders)."""
    ranked = [r for r in results if r.ok]
    if not ranked:
        errors = "; ".join(
            f"{r.method}: {r.error}" for r in results if r.error
        )
        raise SolverError(f"every portfolio strategy failed ({errors})")
    return min(
        ranked,
        key=lambda r: (
            r.propagation.objective(),
            len(r.propagation.deleted_facts),
            r.method,
        ),
    )


def solve_portfolio(
    problem: DeletionPropagationProblem,
    methods: Sequence[str] = DEFAULT_PORTFOLIO,
    max_workers: int | None = None,
    policy: SolvePolicy | None = None,
) -> Propagation:
    """Run the portfolio and return the best feasible propagation.

    Raises :class:`SolverError` when no strategy produced a feasible
    result (for balanced problems every propagation is feasible, so the
    portfolio always answers)."""
    results = run_portfolio(problem, methods, max_workers=max_workers, policy=policy)
    feasible = [r for r in results if r.ok and r.propagation.is_feasible()]
    winner = best_result(feasible if feasible else results)
    if not winner.propagation.is_feasible():
        raise SolverError(
            "no portfolio strategy produced a feasible propagation"
        )
    return winner.propagation


def _solve_delta_serial(
    problem: DeletionPropagationProblem,
    index: int,
    deletions: Mapping[str, list],
    method: str,
    policy: SolvePolicy | None = None,
) -> RawOutcome:
    """In-process twin of :func:`_solve_delta_task` bound to an explicit
    problem — the serial fallback must not touch the module-level
    ``_WORKER_DOC`` / ``_WORKER_PROBLEM`` cache, which belongs to worker
    processes (a parent that is itself a pool worker would otherwise
    have its cached problem clobbered)."""
    from repro.core.faultinject import maybe_inject
    from repro.core.registry import solve_report

    start = time.perf_counter()
    try:
        maybe_inject("delta", index)
        variant = problem.with_deletions(deletions)
        report = solve_report(variant, method=method, policy=policy)
    except Exception as exc:
        return (
            index,
            time.perf_counter() - start,
            None,
            f"{type(exc).__name__}: {exc}",
            _error_attempts(exc),
            None,
        )
    return (
        index,
        time.perf_counter() - start,
        _facts_payload(report.propagation),
        None,
        [record.as_dict() for record in report.attempts],
        report.route,
    )


def run_delta_batch(
    problem: DeletionPropagationProblem,
    requests: Sequence[Mapping[str, Sequence[Sequence[object]]]],
    method: str = "auto",
    max_workers: int | None = None,
    strict: bool = False,
    policy: SolvePolicy | None = None,
) -> list[DeltaOutcome]:
    """Solve a batch of ΔV requests against one shared instance.

    Each request is a ``{view: [values, ...]}`` mapping like the
    ``deletions`` field of a problem document.  The instance, queries
    and weights are shipped to the workers once; each task re-binds only
    the deletion set.  Returns one :class:`DeltaOutcome` per request, in
    order; a request that fails (unknown view tuple, solver error)
    carries its error text instead of aborting the batch, so every
    completed propagation survives one bad request — including requests
    lost to a crashed or hung worker, which the pool supervisor
    re-dispatches (see the module docstring).  ``strict=True`` restores
    the historical behavior of raising :class:`SolverError` on the
    first failed request.  ``policy`` applies the resilience contract
    per request and arms hang detection with its deadline.
    """
    normalized = [
        {name: [list(values) for values in rows] for name, rows in req.items()}
        for req in requests
    ]
    if max_workers is None:
        max_workers = min(len(normalized), os.cpu_count() or 1)

    # Compile the shared base once up front: serial tasks and the
    # parent-side variant rebuilds below all rebind ΔV against this
    # session's arena instead of recompiling per request.
    session = _prime_session(problem)

    raw: list[RawOutcome]
    if max_workers <= 0 or len(normalized) <= 1:
        # In-process execution never touches the JSON document.
        raw = [
            _solve_delta_serial(problem, i, req, method, policy)
            for i, req in enumerate(normalized)
        ]
    else:
        doc = session.document
        manifest = _session_manifest(session)
        tasks = [
            _Task(
                key=i,
                fn=_solve_delta_task,
                args=(i, req, method, policy),
                serial=(
                    lambda i=i, req=req: _solve_delta_serial(
                        problem, i, req, method, policy
                    )
                ),
            )
            for i, req in enumerate(normalized)
        ]
        raw = _run_supervised(
            doc,
            tasks,
            max_workers=max_workers,
            task_timeout=_policy_task_timeout(policy),
            manifest=manifest,
        )

    outcomes: list[DeltaOutcome] = []
    for index, seconds, payload, error, attempts, route in sorted(
        raw, key=lambda outcome: outcome[0]
    ):
        records = _attempt_records(attempts)
        if payload is None:
            if strict:
                raise SolverError(f"request #{index} failed: {error}")
            outcomes.append(
                DeltaOutcome(
                    index, method, None, seconds, error, attempts=records
                )
            )
            continue
        variant = problem.with_deletions(normalized[index])
        outcomes.append(
            DeltaOutcome(
                index,
                method,
                _rebuild(variant, method, payload),
                seconds,
                attempts=records,
                route=route,
            )
        )
    return outcomes
