"""Parallel solver portfolios over one compiled problem.

The compiled witness arena (:mod:`repro.core.arena`) makes single
strategies cheap; this module spends the freed budget on *breadth*: run
several solving strategies on the same problem concurrently and keep
the best feasible propagation, or push a batch of ΔV requests against
one shared instance through worker processes.

Processes, not threads — the solvers are pure Python and hold the GIL,
so ``ProcessPoolExecutor`` is the only way the strategies actually
overlap.  The problem travels to the workers once as its JSON document
(:func:`repro.io.serialize.problem_to_dict`), is reconstructed and
compiled worker-side on first use, and is cached in the worker process
for the rest of the pool's lifetime — the classic compile-once
solve-many layout, one compile per worker instead of one per task.
Workers return plain ``(relation, values)`` pairs; the parent rebuilds
:class:`~repro.core.solution.Propagation` objects against its own
problem, so the public surface stays object-level.

When the pool cannot be used (``max_workers=0``, a single strategy, or
an executor that fails to start — e.g. a sandbox without process
semaphores) the same work runs serially in-process with identical
results; the portfolio is a throughput knob, never a semantics knob.

Exposed on the command line as ``python -m repro.cli solve
--portfolio`` and used by ``benchmarks/run_all.py``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import SolverError
from repro.relational.tuples import Fact
from repro.core.problem import DeletionPropagationProblem
from repro.core.solution import Propagation

__all__ = [
    "DEFAULT_PORTFOLIO",
    "PortfolioResult",
    "DeltaOutcome",
    "run_portfolio",
    "solve_portfolio",
    "run_delta_batch",
]

#: Strategies tried by default: the paper's general-case approximation
#: plus the two greedy baselines — all polynomial, all feasible on
#: key-preserving problems, frequently incomparable on quality.
DEFAULT_PORTFOLIO: tuple[str, ...] = (
    "claim1",
    "greedy-min-damage",
    "greedy-max-coverage",
)


@dataclass(frozen=True)
class PortfolioResult:
    """One strategy's outcome inside a portfolio run."""

    method: str
    propagation: Propagation | None
    wall_seconds: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.propagation is not None


@dataclass(frozen=True)
class DeltaOutcome:
    """One ΔV request's outcome inside a batch run.

    ``propagation`` is bound to a problem variant carrying the request's
    own ΔV; ``error`` carries the failure text when the request could
    not be solved (unknown view tuple, solver error, ...).  Exactly one
    of the two is set.
    """

    index: int
    method: str
    propagation: Propagation | None
    wall_seconds: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.propagation is not None


# ----------------------------------------------------------------------
# Worker-side machinery (module-level so the pool can pickle it)
# ----------------------------------------------------------------------

_WORKER_DOC: Mapping[str, Any] | None = None
_WORKER_PROBLEM: DeletionPropagationProblem | None = None


def _init_worker(doc: Mapping[str, Any]) -> None:
    global _WORKER_DOC, _WORKER_PROBLEM
    _WORKER_DOC = doc
    _WORKER_PROBLEM = None


def _prime_session(problem: DeletionPropagationProblem):
    """Build the problem's shared :class:`SolveSession` eagerly: the
    structure profile plus, on key-preserving instances, the compiled
    witness arena.  Every subsequent ΔV rebind then reuses the compiled
    base (delta slices only) instead of recompiling per request."""
    from repro.core.session import SolveSession

    session = SolveSession.of(problem)
    if session.profile.key_preserving:
        session.arena
    return session


def _worker_problem() -> DeletionPropagationProblem:
    """Reconstruct (once), prime, and cache the problem in this worker."""
    global _WORKER_PROBLEM
    if _WORKER_PROBLEM is None:
        from repro.io.serialize import problem_from_dict

        problem = problem_from_dict(_WORKER_DOC)
        _prime_session(problem)
        _WORKER_PROBLEM = problem
    return _WORKER_PROBLEM


def _facts_payload(propagation: Propagation) -> list[tuple[str, tuple]]:
    return [
        (fact.relation, fact.values)
        for fact in sorted(propagation.deleted_facts)
    ]


def _solve_method_task(method: str) -> tuple[str, float, list | None, str | None]:
    """Worker task: solve the cached problem with one strategy."""
    from repro.core.registry import solve

    start = time.perf_counter()
    try:
        propagation = solve(_worker_problem(), method=method)
    except Exception as exc:  # travel as text; solver errors are data here
        return method, time.perf_counter() - start, None, f"{type(exc).__name__}: {exc}"
    return method, time.perf_counter() - start, _facts_payload(propagation), None


def _solve_delta_task(
    index: int, deletions: Mapping[str, list], method: str
) -> tuple[int, float, list | None, str | None]:
    """Worker task: solve one ΔV request against the cached instance.

    The base problem is reconstructed once per worker (compile-once) and
    each request rebinds only the ΔV via
    :meth:`~repro.core.problem.DeletionPropagationProblem.with_deletions`
    — no per-task document parse, no view re-materialization.
    """
    from repro.core.registry import solve

    start = time.perf_counter()
    try:
        problem = _worker_problem().with_deletions(deletions)
        propagation = solve(problem, method=method)
    except Exception as exc:
        return index, time.perf_counter() - start, None, f"{type(exc).__name__}: {exc}"
    return index, time.perf_counter() - start, _facts_payload(propagation), None


# ----------------------------------------------------------------------
# Parent-side API
# ----------------------------------------------------------------------


def _rebuild(
    problem: DeletionPropagationProblem,
    method: str,
    payload: list[tuple[str, tuple]],
) -> Propagation:
    facts = [Fact(relation, values) for relation, values in payload]
    return Propagation(problem, facts, method=method)


def _run_serial(
    problem: DeletionPropagationProblem, methods: Sequence[str]
) -> list[PortfolioResult]:
    from repro.core.registry import solve

    results: list[PortfolioResult] = []
    for method in methods:
        start = time.perf_counter()
        try:
            propagation = solve(problem, method=method)
        except Exception as exc:
            results.append(
                PortfolioResult(
                    method,
                    None,
                    time.perf_counter() - start,
                    f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        results.append(
            PortfolioResult(method, propagation, time.perf_counter() - start)
        )
    return results


def run_portfolio(
    problem: DeletionPropagationProblem,
    methods: Sequence[str] = DEFAULT_PORTFOLIO,
    max_workers: int | None = None,
) -> list[PortfolioResult]:
    """Solve ``problem`` with every strategy in ``methods``.

    Strategies run in a process pool when ``max_workers`` permits
    (default: one worker per strategy, capped at the CPU count) and
    serially otherwise.  Returns one :class:`PortfolioResult` per
    strategy in input order; strategies that raised carry their error
    text instead of a propagation.
    """
    methods = list(dict.fromkeys(methods))  # dedupe, keep order
    if not methods:
        raise SolverError("portfolio needs at least one method")
    if max_workers is None:
        max_workers = min(len(methods), os.cpu_count() or 1)
    if max_workers <= 0 or len(methods) == 1:
        return _run_serial(problem, methods)

    from repro.io.serialize import problem_to_dict

    doc = problem_to_dict(problem)
    try:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(doc,),
        ) as pool:
            outcomes = list(pool.map(_solve_method_task, methods))
    except (OSError, PermissionError):
        # No usable process primitives (restricted sandboxes): same
        # work, same results, one process.
        return _run_serial(problem, methods)

    results: list[PortfolioResult] = []
    for method, seconds, payload, error in outcomes:
        if payload is None:
            results.append(PortfolioResult(method, None, seconds, error))
        else:
            results.append(
                PortfolioResult(method, _rebuild(problem, method, payload), seconds)
            )
    return results


def best_result(results: Iterable[PortfolioResult]) -> PortfolioResult:
    """The winning entry: best objective, then fewest deletions, then
    method name (deterministic across pool scheduling orders)."""
    ranked = [r for r in results if r.ok]
    if not ranked:
        errors = "; ".join(
            f"{r.method}: {r.error}" for r in results if r.error
        )
        raise SolverError(f"every portfolio strategy failed ({errors})")
    return min(
        ranked,
        key=lambda r: (
            r.propagation.objective(),
            len(r.propagation.deleted_facts),
            r.method,
        ),
    )


def solve_portfolio(
    problem: DeletionPropagationProblem,
    methods: Sequence[str] = DEFAULT_PORTFOLIO,
    max_workers: int | None = None,
) -> Propagation:
    """Run the portfolio and return the best feasible propagation.

    Raises :class:`SolverError` when no strategy produced a feasible
    result (for balanced problems every propagation is feasible, so the
    portfolio always answers)."""
    results = run_portfolio(problem, methods, max_workers=max_workers)
    feasible = [r for r in results if r.ok and r.propagation.is_feasible()]
    winner = best_result(feasible if feasible else results)
    if not winner.propagation.is_feasible():
        raise SolverError(
            "no portfolio strategy produced a feasible propagation"
        )
    return winner.propagation


def _solve_delta_serial(
    problem: DeletionPropagationProblem,
    index: int,
    deletions: Mapping[str, list],
    method: str,
) -> tuple[int, float, list | None, str | None]:
    """In-process twin of :func:`_solve_delta_task` bound to an explicit
    problem — the serial fallback must not touch the module-level
    ``_WORKER_DOC`` / ``_WORKER_PROBLEM`` cache, which belongs to worker
    processes (a parent that is itself a pool worker would otherwise
    have its cached problem clobbered)."""
    from repro.core.registry import solve

    start = time.perf_counter()
    try:
        variant = problem.with_deletions(deletions)
        propagation = solve(variant, method=method)
    except Exception as exc:
        return index, time.perf_counter() - start, None, f"{type(exc).__name__}: {exc}"
    return index, time.perf_counter() - start, _facts_payload(propagation), None


def run_delta_batch(
    problem: DeletionPropagationProblem,
    requests: Sequence[Mapping[str, Sequence[Sequence[object]]]],
    method: str = "auto",
    max_workers: int | None = None,
    strict: bool = False,
) -> list[DeltaOutcome]:
    """Solve a batch of ΔV requests against one shared instance.

    Each request is a ``{view: [values, ...]}`` mapping like the
    ``deletions`` field of a problem document.  The instance, queries
    and weights are shipped to the workers once; each task re-binds only
    the deletion set.  Returns one :class:`DeltaOutcome` per request, in
    order; a request that fails (unknown view tuple, solver error)
    carries its error text instead of aborting the batch, so every
    completed propagation survives one bad request.  ``strict=True``
    restores the historical behavior of raising :class:`SolverError` on
    the first failed request.
    """
    normalized = [
        {name: [list(values) for values in rows] for name, rows in req.items()}
        for req in requests
    ]
    if max_workers is None:
        max_workers = min(len(normalized), os.cpu_count() or 1)

    # Compile the shared base once up front: serial tasks and the
    # parent-side variant rebuilds below all rebind ΔV against this
    # session's arena instead of recompiling per request.
    _prime_session(problem)

    raw: list[tuple[int, float, list | None, str | None]]
    if max_workers <= 0 or len(normalized) <= 1:
        raw = [
            _solve_delta_serial(problem, i, req, method)
            for i, req in enumerate(normalized)
        ]
    else:
        from repro.io.serialize import problem_to_dict

        doc = problem_to_dict(problem)
        try:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_init_worker,
                initargs=(doc,),
            ) as pool:
                raw = list(
                    pool.map(
                        _solve_delta_task,
                        range(len(normalized)),
                        normalized,
                        [method] * len(normalized),
                    )
                )
        except (OSError, PermissionError):
            raw = [
                _solve_delta_serial(problem, i, req, method)
                for i, req in enumerate(normalized)
            ]

    outcomes: list[DeltaOutcome] = []
    for index, seconds, payload, error in sorted(raw):
        if payload is None:
            if strict:
                raise SolverError(f"request #{index} failed: {error}")
            outcomes.append(DeltaOutcome(index, method, None, seconds, error))
            continue
        variant = problem.with_deletions(normalized[index])
        outcomes.append(
            DeltaOutcome(index, method, _rebuild(variant, method, payload), seconds)
        )
    return outcomes
