"""Object-backed reference twins of the arena hot path.

The production :class:`~repro.core.oracle.EliminationOracle`, the
greedy baselines, and :func:`~repro.core.local_search.improve` all run
on the integer-ID witness arena (:mod:`repro.core.arena`).  This module
keeps the pre-arena implementations — dicts and frozensets keyed by
hashed :class:`~repro.relational.tuples.Fact` /
:class:`~repro.relational.views.ViewTuple` objects — as behavioral
ground truth:

* the differential suite (``tests/core/test_arena.py``) asserts the
  arena-backed solvers produce **identical propagations and identical
  oracle counters** to these twins on random instances and churn
  streams;
* the speedup bench (``benchmarks/bench_oracle_local_search.py``)
  measures the arena path against :func:`reference_improve` — the
  object-backed oracle of the previous PR — so the perf trajectory is
  comparable across PRs.

The counter semantics are shared with the arena oracle: one
``oracle_hit`` per hypothetical question, one ``delta_evaluation`` per
applied move, one ``full_reevaluation`` per pass over the complete
witness structure.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.errors import NotKeyPreservingError, ProblemError
from repro.relational.tuples import Fact
from repro.relational.views import ViewTuple
from repro.core.oracle import OracleCounters
from repro.core.problem import (
    BalancedDeletionPropagationProblem,
    DeletionPropagationProblem,
)
from repro.core.solution import Propagation

__all__ = [
    "ReferenceEliminationOracle",
    "reference_improve",
    "reference_greedy_min_damage",
    "reference_greedy_max_coverage",
]

_MAX_ROUNDS = 50


class ReferenceEliminationOracle:
    """The object-backed elimination oracle (previous PR's hot path).

    Maintains ``hits[vt] = |wit(vt) ∩ ΔD|`` in a dict keyed by
    :class:`ViewTuple`; every query hashes the dependents of the probed
    fact.  Semantically identical to the arena-backed
    :class:`~repro.core.oracle.EliminationOracle` — only the data
    layout differs — which is exactly what the differential suite
    checks.
    """

    def __init__(
        self,
        problem: DeletionPropagationProblem,
        deleted: Iterable[Fact] = (),
        counters: OracleCounters | None = None,
    ):
        if not problem.is_key_preserving():
            raise NotKeyPreservingError(
                "the elimination oracle requires key-preserving queries "
                "(unique witnesses)"
            )
        self.problem = problem
        self.counters = counters if counters is not None else OracleCounters()
        self._balanced = isinstance(problem, BalancedDeletionPropagationProblem)
        self._penalty = getattr(problem, "delta_penalty", 1.0)
        self._delta: frozenset[ViewTuple] = frozenset(
            problem.deleted_view_tuples()
        )
        self._deleted: set[Fact] = set()
        self._hits: dict[ViewTuple, int] = {}
        self._side_effect: float = 0.0
        self._uncovered: int = len(self._delta)
        self.counters.full_reevaluations += 1
        for fact in sorted(deleted, key=lambda f: (f.relation, f.values)):
            if fact in self._deleted:
                continue
            self._apply_add(fact)

    # ------------------------------------------------------------------
    # State observation
    # ------------------------------------------------------------------

    @property
    def deleted_facts(self) -> frozenset[Fact]:
        return frozenset(self._deleted)

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._deleted

    def __len__(self) -> int:
        return len(self._deleted)

    def hits(self, vt: ViewTuple) -> int:
        return self._hits.get(vt, 0)

    def is_eliminated(self, vt: ViewTuple) -> bool:
        return self._hits.get(vt, 0) > 0

    def eliminated_view_tuples(self) -> frozenset[ViewTuple]:
        return frozenset(vt for vt, h in self._hits.items() if h > 0)

    def side_effect(self) -> float:
        return self._side_effect

    def uncovered_delta(self) -> int:
        return self._uncovered

    def is_feasible(self) -> bool:
        return self._uncovered == 0

    def balanced_cost(self) -> float:
        return self._penalty * self._uncovered + self._side_effect

    def objective(self) -> float:
        if self._balanced:
            return self.balanced_cost()
        if self._uncovered:
            return float("inf")
        return self._side_effect

    # ------------------------------------------------------------------
    # Mutation (delta updates)
    # ------------------------------------------------------------------

    def _apply_add(self, fact: Fact) -> None:
        self._deleted.add(fact)
        hits = self._hits
        for vt in self.problem.dependents(fact):
            h = hits.get(vt, 0)
            hits[vt] = h + 1
            if h == 0:
                if vt in self._delta:
                    self._uncovered -= 1
                else:
                    self._side_effect += self.problem.weight(vt)

    def add(self, fact: Fact) -> None:
        if fact in self._deleted:
            raise ProblemError(f"{fact!r} is already deleted")
        if fact not in self.problem.instance:
            raise ProblemError(f"{fact!r} is not in the source instance")
        self.counters.delta_evaluations += 1
        self._apply_add(fact)

    def remove(self, fact: Fact) -> None:
        if fact not in self._deleted:
            raise ProblemError(f"{fact!r} is not currently deleted")
        self.counters.delta_evaluations += 1
        self._deleted.remove(fact)
        hits = self._hits
        for vt in self.problem.dependents(fact):
            h = hits[vt] - 1
            if h:
                hits[vt] = h
            else:
                del hits[vt]
                if vt in self._delta:
                    self._uncovered += 1
                else:
                    self._side_effect -= self.problem.weight(vt)

    def swap(self, out: Fact, replacement: Fact) -> None:
        self.remove(out)
        self.add(replacement)

    # ------------------------------------------------------------------
    # Hypothetical queries
    # ------------------------------------------------------------------

    def _shift_if_added(self, fact: Fact) -> tuple[float, int]:
        d_se = 0.0
        d_unc = 0
        hits = self._hits
        for vt in self.problem.dependents(fact):
            if hits.get(vt, 0) == 0:
                if vt in self._delta:
                    d_unc -= 1
                else:
                    d_se += self.problem.weight(vt)
        return d_se, d_unc

    def _shift_if_removed(self, fact: Fact) -> tuple[float, int]:
        d_se = 0.0
        d_unc = 0
        hits = self._hits
        for vt in self.problem.dependents(fact):
            if hits.get(vt, 0) == 1:
                if vt in self._delta:
                    d_unc += 1
                else:
                    d_se -= self.problem.weight(vt)
        return d_se, d_unc

    def _objective_for(self, side_effect: float, uncovered: int) -> float:
        if self._balanced:
            return self._penalty * uncovered + side_effect
        if uncovered:
            return float("inf")
        return side_effect

    def objective_if_added(self, fact: Fact) -> float:
        self.counters.oracle_hits += 1
        d_se, d_unc = self._shift_if_added(fact)
        return self._objective_for(
            self._side_effect + d_se, self._uncovered + d_unc
        )

    def objective_if_removed(self, fact: Fact) -> float:
        self.counters.oracle_hits += 1
        d_se, d_unc = self._shift_if_removed(fact)
        return self._objective_for(
            self._side_effect + d_se, self._uncovered + d_unc
        )

    def objective_if_swapped(self, out: Fact, replacement: Fact) -> float:
        self.counters.oracle_hits += 1
        d_se, d_unc = self._shift_if_swapped(out, replacement)
        return self._objective_for(
            self._side_effect + d_se, self._uncovered + d_unc
        )

    def _shift_if_swapped(
        self, out: Fact, replacement: Fact
    ) -> tuple[float, int]:
        deps_out = self.problem.dependents(out)
        deps_in = self.problem.dependents(replacement)
        d_se = 0.0
        d_unc = 0
        hits = self._hits
        for vt in deps_out:
            if vt in deps_in:
                continue
            if hits.get(vt, 0) == 1:
                if vt in self._delta:
                    d_unc += 1
                else:
                    d_se -= self.problem.weight(vt)
        for vt in deps_in:
            if vt in deps_out:
                continue
            if hits.get(vt, 0) == 0:
                if vt in self._delta:
                    d_unc -= 1
                else:
                    d_se += self.problem.weight(vt)
        return d_se, d_unc

    def feasible_if_removed(self, fact: Fact) -> bool:
        self.counters.oracle_hits += 1
        hits = self._hits
        for vt in self.problem.dependents(fact):
            if vt in self._delta and hits.get(vt, 0) == 1:
                return False
        return self._uncovered == 0

    def feasible_if_swapped(self, out: Fact, replacement: Fact) -> bool:
        self.counters.oracle_hits += 1
        _, d_unc = self._shift_if_swapped(out, replacement)
        return self._uncovered + d_unc == 0

    # ------------------------------------------------------------------
    # Greedy-selection primitives
    # ------------------------------------------------------------------

    def marginal_damage(self, fact: Fact) -> float:
        self.counters.oracle_hits += 1
        hits = self._hits
        return sum(
            self.problem.weight(vt)
            for vt in self.problem.dependents(fact)
            if vt not in self._delta and hits.get(vt, 0) == 0
        )

    def coverage(self, fact: Fact) -> int:
        self.counters.oracle_hits += 1
        hits = self._hits
        return sum(
            1
            for vt in self.problem.dependents(fact)
            if vt in self._delta and hits.get(vt, 0) == 0
        )

    # ------------------------------------------------------------------
    # Export / ground truth
    # ------------------------------------------------------------------

    def to_propagation(self, method: str = "oracle") -> Propagation:
        return Propagation(
            self.problem,
            self._deleted,
            method=method,
            counters=self.counters,
        )

    def verify(self) -> bool:
        self.counters.full_reevaluations += 1
        reference = Propagation(self.problem, self._deleted)
        if self.eliminated_view_tuples() != reference.eliminated_view_tuples:
            return False
        if abs(self._side_effect - reference.side_effect()) > 1e-9:
            return False
        if self._uncovered != len(reference.surviving_delta):
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"ReferenceEliminationOracle(|ΔD|={len(self._deleted)}, "
            f"uncovered={self._uncovered}, side_effect={self._side_effect:g})"
        )


# ----------------------------------------------------------------------
# Object-backed solver twins (the previous PR's move loops, verbatim)
# ----------------------------------------------------------------------


def reference_improve(
    solution: Propagation,
    max_rounds: int = _MAX_ROUNDS,
    counters: OracleCounters | None = None,
) -> Propagation:
    """The previous PR's oracle-backed local search: the identical move
    loop as :func:`repro.core.local_search.improve`, costed through the
    object-backed oracle.  Same moves, same counters — only slower."""
    problem = solution.problem
    if not problem.is_key_preserving():
        raise NotKeyPreservingError(
            "local search requires key-preserving queries"
        )
    balanced = isinstance(problem, BalancedDeletionPropagationProblem)
    if not balanced and not solution.is_feasible():
        raise ValueError("local search needs a feasible starting solution")
    oracle = ReferenceEliminationOracle(
        problem, solution.deleted_facts, counters=counters
    )
    current_cost = oracle.objective()
    candidates = problem.candidate_facts()

    for _ in range(max_rounds):
        improved = False
        for fact in sorted(oracle.deleted_facts):
            if not balanced and not oracle.feasible_if_removed(fact):
                continue
            cost = oracle.objective_if_removed(fact)
            if cost <= current_cost:
                oracle.remove(fact)
                current_cost = cost
                improved = True
        for fact in sorted(oracle.deleted_facts):
            for replacement in candidates:
                if replacement in oracle:
                    continue
                if not balanced and not oracle.feasible_if_swapped(
                    fact, replacement
                ):
                    continue
                cost = oracle.objective_if_swapped(fact, replacement)
                if cost < current_cost:
                    oracle.swap(fact, replacement)
                    current_cost = cost
                    improved = True
                    break
        if balanced:
            for fact in candidates:
                if fact in oracle:
                    continue
                cost = oracle.objective_if_added(fact)
                if cost < current_cost:
                    oracle.add(fact)
                    current_cost = cost
                    improved = True
        if not improved:
            break

    return oracle.to_propagation(method=f"{solution.method}+local-search")


def _require_key_preserving(problem: DeletionPropagationProblem) -> None:
    if not problem.is_key_preserving():
        raise NotKeyPreservingError(
            "greedy baselines require key-preserving queries"
        )


def _newly_eliminated(
    oracle: ReferenceEliminationOracle, fact: Fact
) -> list[ViewTuple]:
    return [
        vt
        for vt in oracle.problem.dependents(fact)
        if oracle.hits(vt) == 0
    ]


def _affected_candidates(
    problem: DeletionPropagationProblem,
    newly: list[ViewTuple],
    candidate_set: frozenset[Fact],
) -> set[Fact]:
    affected: set[Fact] = set()
    for vt in newly:
        affected.update(problem.witness(vt))
    return affected & candidate_set


def reference_greedy_min_damage(
    problem: DeletionPropagationProblem,
    counters: OracleCounters | None = None,
) -> Propagation:
    """Object-backed twin of
    :func:`repro.core.greedy.solve_greedy_min_damage`."""
    _require_key_preserving(problem)
    oracle = ReferenceEliminationOracle(problem, (), counters=counters)
    delta = frozenset(problem.deleted_view_tuples())
    candidate_set = frozenset(problem.candidate_facts())

    version: dict[Fact, int] = {}
    heap: list[tuple[float, ViewTuple, Fact, int]] = []
    for vt in sorted(delta):
        for fact in sorted(problem.witness(vt)):
            heapq.heappush(
                heap, (oracle.marginal_damage(fact), vt, fact, 0)
            )

    while oracle.uncovered_delta() and heap:
        damage, vt, fact, stamp = heapq.heappop(heap)
        if stamp != version.get(fact, 0) or oracle.hits(vt) > 0:
            continue
        newly = _newly_eliminated(oracle, fact)
        oracle.add(fact)
        affected = _affected_candidates(
            problem, [v for v in newly if v not in delta], candidate_set
        )
        for other in affected:
            if other in oracle:
                continue
            version[other] = version.get(other, 0) + 1
            damage = oracle.marginal_damage(other)
            for target in problem.dependents(other):
                if target in delta and oracle.hits(target) == 0:
                    heapq.heappush(
                        heap, (damage, target, other, version[other])
                    )
    return oracle.to_propagation(method="greedy-min-damage")


def reference_greedy_max_coverage(
    problem: DeletionPropagationProblem,
    counters: OracleCounters | None = None,
) -> Propagation:
    """Object-backed twin of
    :func:`repro.core.greedy.solve_greedy_max_coverage`."""
    _require_key_preserving(problem)
    oracle = ReferenceEliminationOracle(problem, (), counters=counters)
    candidate_set = frozenset(problem.candidate_facts())

    version: dict[Fact, int] = {}
    heap: list[tuple[float, Fact, int]] = []

    def _push(fact: Fact, stamp: int) -> None:
        coverage = oracle.coverage(fact)
        if coverage == 0:
            return
        score = coverage / (1.0 + oracle.marginal_damage(fact))
        heapq.heappush(heap, (-score, fact, stamp))

    for fact in problem.candidate_facts():
        _push(fact, 0)

    while oracle.uncovered_delta() and heap:
        _, fact, stamp = heapq.heappop(heap)
        if stamp != version.get(fact, 0) or fact in oracle:
            continue
        newly = _newly_eliminated(oracle, fact)
        oracle.add(fact)
        for other in _affected_candidates(problem, newly, candidate_set):
            if other in oracle:
                continue
            version[other] = version.get(other, 0) + 1
            _push(other, version[other])
    return oracle.to_propagation(method="greedy-max-coverage")
