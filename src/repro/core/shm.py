"""Named shared-memory export/attach for the compiled witness arena.

:class:`~repro.core.arena.CompiledProblem` already stores the whole
witness structure as flat, immutable, contiguous numpy buffers — the
exact shape ``multiprocessing.shared_memory`` serves zero-copy.  This
module packs those slabs into **one named segment** per instance and
describes it with a JSON *manifest*, so a worker process *attaches* to a
compiled instance (microseconds of ``mmap`` + object rebuilding) instead
of re-parsing the problem document and re-running query evaluation,
profile scans, and the arena compile.

Manifest format (``format: "repro-shm-arena/1"``)
-------------------------------------------------

* ``segment`` — the shared-memory segment name.
* ``arrays`` — per-slab specs ``{name: {dtype, shape, offset}}`` for
  ``dep_offsets`` / ``dep_indices`` / ``wit_offsets`` / ``wit_indices``
  / ``weights`` / ``is_delta``, all views into the one segment
  (offsets 8-byte aligned).
* ``document`` — the full problem document
  (:func:`repro.io.serialize.problem_to_dict`): facts, schema, query
  texts, ΔV, weights.  Facts are cheap to rebuild; *evaluating* the
  queries over them is what the segment lets attachers skip.
* ``view_tuples`` — the view tuples in **arena ID order** (the sorted
  interning order), so attachers rebuild the ID ↔ object tables without
  evaluating anything.
* ``content_hash`` — sha256 over the canonical document JSON; the
  registration key of :mod:`repro.serve`.
* ``profile`` / ``pivots`` — optional: the exporter's
  :class:`~repro.core.session.StructureProfile` verdicts and data-dual
  pivot facts, letting :func:`attach_session` seed the session memos
  (the structural probe — in particular Algorithm 4's pivot search —
  dominates worker prime time, and its answers are ΔV-independent).

Ownership & lifetime
--------------------

The exporting process **owns** the segment: it is closed *and unlinked*
when the owning arena (and every ΔV sibling sharing the handle) is
garbage collected, or eagerly via :func:`release_arena` /
``SolveSession.close()`` — ``weakref.finalize`` covers interpreter
exit.  Attachers hold a close-only handle and never unlink.  On Python
< 3.13 ``SharedMemory`` has no ``track=False``, and the global
``resource_tracker`` would unlink the segment when *any* attaching
process exits; :func:`_attach_segment` therefore unregisters the
attachment from the tracker, restoring owner-only unlink semantics.

Bit-exactness
-------------

Attach is **bitwise identical** to a local compile: the interning
tables are rebuilt in the same sorted order the exporter used (IDs are
positions in sorted object order, and sorting is deterministic), and
the CSR/weight/flag buffers are the exporter's own bytes.  Every solver
consumes only those arrays plus lazy tuple views derived from them, so
an attached solve replays a local solve move-for-move — the
``tests/core/test_shm.py`` differential suite asserts this per fuzz
shape, oracle counters included.
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Mapping, TYPE_CHECKING

import numpy as np

from repro.errors import ReproError
from repro.relational.tuples import Fact
from repro.relational.views import View, ViewSet, ViewTuple
from repro.core.arena import CompiledProblem, _StructCache, _readonly
from repro.core.problem import (
    BalancedDeletionPropagationProblem,
    DeletionPropagationProblem,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.session import SolveSession

__all__ = [
    "ShmError",
    "export_arena",
    "export_session",
    "attach_arena",
    "attach_session",
    "release_arena",
    "document_hash",
    "active_segments",
]

_FORMAT = "repro-shm-arena/1"

#: The arena slabs that live in the segment, in pack order.
_ARRAY_FIELDS = (
    "dep_offsets",
    "dep_indices",
    "wit_offsets",
    "wit_indices",
    "weights",
    "is_delta",
)

_ALIGN = 8


class ShmError(ReproError):
    """Malformed manifest or unusable shared-memory segment."""


# ----------------------------------------------------------------------
# Segment handles (lifetime management)
# ----------------------------------------------------------------------

#: Names of segments this process currently owns (diagnostics/tests).
_OWNED_NAMES: set[str] = set()
#: Names of segments this process is attached to (diagnostics/tests).
_ATTACHED_NAMES: set[str] = set()


def _close_and_unlink(
    shm: shared_memory.SharedMemory, name: str, owner_pid: int
) -> None:
    _OWNED_NAMES.discard(name)
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - views still alive
        pass
    if os.getpid() != owner_pid:
        # A fork-started worker inherited this handle; the segment
        # belongs to the parent and must survive the child's exit.
        return
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def _close_only(shm: shared_memory.SharedMemory, name: str) -> None:
    _ATTACHED_NAMES.discard(name)
    try:
        shm.close()
    except BufferError:
        # Live numpy views still point into the mapping.  Unmapping
        # would invalidate them, so neutralize the handle instead: drop
        # the mmap reference (the OS reclaims the mapping at process
        # exit) and close the fd.  The views stay valid, and
        # ``SharedMemory.__del__`` has nothing left to retry — no
        # "Exception ignored" noise on interpreter shutdown.
        shm._mmap = None
        if shm._fd >= 0:
            os.close(shm._fd)
            shm._fd = -1
    except OSError:  # pragma: no cover - buffer already torn down
        pass


class _OwnedSegment:
    """The exporter's handle: close **and unlink** on release/GC."""

    __slots__ = ("shm", "manifest", "_finalizer", "__weakref__")

    def __init__(self, shm: shared_memory.SharedMemory, manifest: dict):
        self.shm = shm
        self.manifest = manifest
        self._finalizer = weakref.finalize(
            self, _close_and_unlink, shm, shm.name, os.getpid()
        )
        _OWNED_NAMES.add(shm.name)

    def release(self) -> None:
        self._finalizer()


class _AttachedSegment:
    """A reader's handle: close only — the exporter owns the name."""

    __slots__ = ("shm", "manifest", "_finalizer", "__weakref__")

    def __init__(self, shm: shared_memory.SharedMemory, manifest: dict):
        self.shm = shm
        self.manifest = manifest
        self._finalizer = weakref.finalize(self, _close_only, shm, shm.name)
        _ATTACHED_NAMES.add(shm.name)

    def release(self) -> None:
        self._finalizer()


def active_segments() -> tuple[str, ...]:
    """Names of segments this process owns or is attached to (sorted;
    the leak assertions of the shm tests and the serve smoke job)."""
    return tuple(sorted(_OWNED_NAMES | _ATTACHED_NAMES))


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment *without* adopting unlink duty.

    Python < 3.13 registers every attachment with the global
    ``resource_tracker``, whose exit cleanup would unlink the segment
    out from under the owner the moment any attaching process exits.
    Unregistering the attachment restores owner-only unlink.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError as exc:
        raise ShmError(
            f"shared-memory segment {name!r} does not exist (exporter "
            "gone, or segment already released?)"
        ) from exc
    if name not in _OWNED_NAMES:
        # Attaching from the owning process must NOT unregister — the
        # tracker entry belongs to the create side and unlink expects
        # to find it.
        try:  # pragma: no cover - tracker internals vary across versions
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


# ----------------------------------------------------------------------
# Value / fact codecs (JSON-safe, mirroring repro.io.serialize)
# ----------------------------------------------------------------------


def _value_to_json(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_value_to_json(item) for item in value]
    return value


def _value_from_json(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_value_from_json(item) for item in value)
    return value


def document_hash(document: Mapping[str, Any]) -> str:
    """sha256 over the canonical (sorted-key, compact) document JSON —
    the content address an instance registers under in the serve tier.

    The optional ``"profile"`` block is excluded: it is a derived cache
    of the document's own content (see
    :func:`repro.io.serialize.problem_to_dict`), so a document with and
    without it must hash to the same address — clients from before the
    block existed keep hitting the same serve-tier cache entries.
    """
    if "profile" in document:
        document = {k: v for k, v in document.items() if k != "profile"}
    canonical = json.dumps(
        document, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------


def export_arena(
    arena: CompiledProblem,
    document: Mapping[str, Any] | None = None,
    profile: Mapping[str, Any] | None = None,
    rooted: Mapping[str, Any] | None = None,
    name: str | None = None,
) -> dict:
    """Publish ``arena``'s slabs into one named segment; return the
    manifest.

    Idempotent per arena: a second call returns the cached manifest
    (enriched in place if ``profile`` / ``rooted`` arrive later — e.g.
    a bare ``CompiledProblem.export_shm()`` followed by
    ``SolveSession.export_shm()``).  The calling process owns the
    segment; see module docstring for lifetime rules.

    ``name`` pins the segment name instead of drawing a random one —
    the serve tier's durable journal derives it from the content hash
    so a crashed predecessor's segment is *reapable by derivation*.  A
    pinned name that already exists is presumed such an orphan (no live
    owner could share the derivation): it is unlinked and re-created.
    """
    handle = arena._shm
    if isinstance(handle, _OwnedSegment):
        manifest = handle.manifest
        if profile is not None and manifest.get("profile") is None:
            manifest["profile"] = dict(profile)
        if rooted is not None and manifest.get("rooted") is None:
            manifest["rooted"] = dict(rooted)
        return manifest
    if isinstance(handle, _AttachedSegment):
        # Re-exporting an attached arena would copy the segment under a
        # new name; the attacher already holds a manifest-equivalent.
        return dict(handle.manifest)

    arrays = [
        (name, np.ascontiguousarray(getattr(arena, name)))
        for name in _ARRAY_FIELDS
    ]
    specs: dict[str, dict[str, Any]] = {}
    offset = 0
    for name, array in arrays:
        offset = -(-offset // _ALIGN) * _ALIGN
        specs[name] = {
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "offset": offset,
        }
        offset += array.nbytes
    segment_name = name or f"repro_{secrets.token_hex(6)}"
    try:
        shm = shared_memory.SharedMemory(
            create=True, name=segment_name, size=max(1, offset)
        )
    except FileExistsError:
        if name is None:  # pragma: no cover - token collision
            raise
        stale = shared_memory.SharedMemory(name=segment_name)
        try:
            stale.unlink()
        finally:
            stale.close()
        shm = shared_memory.SharedMemory(
            create=True, name=segment_name, size=max(1, offset)
        )
    for name, array in arrays:
        spec = specs[name]
        start = spec["offset"]
        target = np.frombuffer(
            shm.buf, dtype=array.dtype, count=array.size, offset=start
        )
        target[:] = array.reshape(-1)

    if document is None:
        from repro.io.serialize import problem_to_dict

        document = problem_to_dict(arena.problem)
    manifest: dict[str, Any] = {
        "format": _FORMAT,
        "segment": shm.name,
        "arrays": specs,
        "document": dict(document),
        # Interning tables in arena ID order, so attachers rebuild the
        # ID ↔ object maps without evaluating or re-sorting anything
        # (Fact/ViewTuple ordering has a repr fallback for mixed value
        # types — shipping the order sidesteps re-deriving it).
        "facts": [
            [fact.relation, [_value_to_json(v) for v in fact.values]]
            for fact in arena.facts
        ],
        "view_tuples": [
            [vt.view, [_value_to_json(v) for v in vt.values]]
            for vt in arena.view_tuples
        ],
        "balanced": arena.balanced,
        "delta_penalty": arena.delta_penalty,
        "content_hash": document_hash(document),
        "profile": dict(profile) if profile is not None else None,
        "rooted": dict(rooted) if rooted is not None else None,
    }
    arena._shm = _OwnedSegment(shm, manifest)
    return manifest


def export_session(session: "SolveSession", name: str | None = None) -> dict:
    """Export a session's arena with the structural verdicts riding
    along: the profile dict and — when Algorithm 4 applies — the full
    pivot-rooted layout (parent / depth / component-id arrays over
    arena fact IDs), so attachers skip the structural probe *and* the
    quadratic pivot search entirely.  ``name`` pins the segment name
    (see :func:`export_arena`)."""
    profile = session.profile
    rooted_doc: dict[str, Any] | None = None
    if profile.dp_tree_applies:
        arena = session.arena
        fact_ids = arena.fact_ids
        num_facts = len(arena.facts)
        # -2 = fact not in the data dual graph, -1 = component pivot.
        parent = [-2] * num_facts
        depth = [0] * num_facts
        component = [-1] * num_facts
        pivots: list[int] = []
        for cid, rc in enumerate(session.rooted_components()):
            pivots.append(fact_ids[rc.pivot])
            for fact, par in rc.parent.items():
                fid = fact_ids[fact]
                parent[fid] = -1 if par is None else fact_ids[par]
                depth[fid] = rc.depth[fact]
                component[fid] = cid
        rooted_doc = {
            "parent": parent,
            "depth": depth,
            "component": component,
            "pivots": pivots,
        }
    from repro.core.session import profile_to_dict

    return export_arena(
        session.arena,
        document=session.document,
        profile=profile_to_dict(profile),
        rooted=rooted_doc,
        name=name,
    )


def release_arena(arena: CompiledProblem) -> None:
    """Eagerly release ``arena``'s segment handle: owners close and
    unlink, attachers just close.  Safe to call twice.  ΔV siblings
    sharing the handle lose their numpy views — release only when the
    instance is retired."""
    handle = arena._shm
    if handle is not None:
        handle.release()
        arena._shm = None


# ----------------------------------------------------------------------
# Attach
# ----------------------------------------------------------------------


def _segment_views(
    segment: shared_memory.SharedMemory, specs: Mapping[str, Any]
) -> dict[str, np.ndarray]:
    views: dict[str, np.ndarray] = {}
    for name in _ARRAY_FIELDS:
        try:
            spec = specs[name]
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(dim) for dim in spec["shape"])
            offset = int(spec["offset"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ShmError(f"manifest array spec {name!r} malformed") from exc
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        end = offset + count * dtype.itemsize
        if end > segment.size:
            raise ShmError(
                f"array {name!r} ({end} bytes) overruns segment "
                f"{segment.name!r} ({segment.size} bytes)"
            )
        views[name] = _readonly(
            np.frombuffer(
                segment.buf, dtype=dtype, count=count, offset=offset
            ).reshape(shape)
        )
    return views


def attach_arena(manifest: Mapping[str, Any]) -> CompiledProblem:
    """Attach to an exported arena: rebuild the object surface (facts,
    views, problem) from the manifest *without query evaluation* and
    point the arena's slabs straight into the shared segment.

    The returned arena's ``problem`` carries it as its compiled arena,
    so ``SolveSession.of(arena.problem)`` (or :func:`attach_session`)
    finds it instead of recompiling.
    """
    if manifest.get("format") != _FORMAT:
        raise ShmError(
            f"unsupported manifest format {manifest.get('format')!r} "
            f"(expected {_FORMAT!r})"
        )
    from repro.io.serialize import schema_from_dict
    from repro.relational.instance import Instance
    from repro.relational.parser import parse_query

    document = manifest["document"]
    segment = _attach_segment(manifest["segment"])
    try:
        slabs = _segment_views(segment, manifest["arrays"])

        schema = schema_from_dict(document["schema"])
        queries = [parse_query(text, schema) for text in document["queries"]]

        # The manifest ships both interning tables in arena ID order —
        # facts rebuilt positionally, instance bulk-loaded without
        # re-validating what the exporter already validated.
        facts: tuple[Fact, ...] = tuple(
            Fact(relation, tuple(_value_from_json(v) for v in values))
            for relation, values in manifest["facts"]
        )
        instance = Instance.from_trusted_facts(schema, facts)
        view_tuples: tuple[ViewTuple, ...] = tuple(
            ViewTuple(view, tuple(_value_from_json(v) for v in values))
            for view, values in manifest["view_tuples"]
        )
        wit_offsets = slabs["wit_offsets"]
        wit_indices = slabs["wit_indices"]
        if len(view_tuples) + 1 != wit_offsets.size:
            raise ShmError(
                f"manifest lists {len(view_tuples)} view tuples but the "
                f"witness CSR has {wit_offsets.size - 1} rows"
            )
        if len(facts) + 1 != slabs["dep_offsets"].size:
            raise ShmError(
                f"document has {len(facts)} facts but the dependents "
                f"CSR has {slabs['dep_offsets'].size - 1} rows"
            )

        # Per-view witness maps straight from the CSR — the evaluation
        # the exporter already paid for, replayed as array indexing.
        bounds = wit_offsets.tolist()
        flat = wit_indices.tolist()
        by_view: dict[str, dict[tuple, list[frozenset[Fact]]]] = {
            query.name: {} for query in queries
        }
        for vid, vt in enumerate(view_tuples):
            witness = frozenset(
                facts[fid] for fid in flat[bounds[vid] : bounds[vid + 1]]
            )
            by_view[vt.view][vt.values] = [witness]

        views = ViewSet(
            View.from_witnesses(query, by_view[query.name])
            for query in queries
        )
        deletions = {
            name: [
                tuple(_value_from_json(v) for v in values) for values in rows
            ]
            for name, rows in document.get("deletions", {}).items()
        }
        weights = {
            (
                entry["view"],
                tuple(_value_from_json(v) for v in entry["values"]),
            ): float(entry["weight"])
            for entry in document.get("weights", [])
        }
        balanced = bool(manifest.get("balanced", document.get("balanced")))
        cls = (
            BalancedDeletionPropagationProblem
            if balanced
            else DeletionPropagationProblem
        )
        problem = cls.from_materialized(
            instance,
            queries,
            views,
            deletions,
            weights=weights,
            delta_penalty=float(manifest.get("delta_penalty", 1.0)),
        )

        arena = CompiledProblem.__new__(CompiledProblem)
        arena.problem = problem
        arena.balanced = balanced
        arena.delta_penalty = float(manifest.get("delta_penalty", 1.0))
        arena.facts = facts
        arena.fact_ids = {fact: fid for fid, fact in enumerate(facts)}
        arena.view_tuples = view_tuples
        arena.vt_ids = {vt: vid for vid, vt in enumerate(view_tuples)}
        arena.dep_offsets = slabs["dep_offsets"]
        arena.dep_indices = slabs["dep_indices"]
        arena.wit_offsets = wit_offsets
        arena.wit_indices = wit_indices
        arena.weights = slabs["weights"]
        arena._struct = _StructCache()
        arena._shm = _AttachedSegment(segment, dict(manifest))
        arena._set_delta_flags(slabs["is_delta"])
        arena._bind_delta()
        arena._exact_costs = None
        problem._compiled_arena = arena
        return arena
    except BaseException:
        _close_only(segment, segment.name)
        raise


def _rebuild_rooted(
    arena: CompiledProblem, rooted_doc: Mapping[str, Any]
) -> "list":
    """Reconstruct the pivot-rooted layout from the shipped fact-ID
    arrays — no adjacency construction, no pivot search, no segment
    verification: the exporter's layout is replayed verbatim.

    Segment order matches a local build: segments are appended in arena
    view-tuple ID order, which is exactly the (sorted) insertion order
    of the exporter's witness map.
    """
    from repro.hypergraph.datadual import RootedComponent, Segment

    facts = arena.facts
    parent_ids = rooted_doc["parent"]
    depth_ids = rooted_doc["depth"]
    component_ids = rooted_doc["component"]
    pivots = rooted_doc["pivots"]
    if len(parent_ids) != len(facts):
        raise ShmError(
            f"rooted layout covers {len(parent_ids)} facts, arena has "
            f"{len(facts)}"
        )

    num_components = len(pivots)
    parents: list[dict[Fact, Fact | None]] = [{} for _ in range(num_components)]
    depths: list[dict[Fact, int]] = [{} for _ in range(num_components)]
    children: list[dict[Fact, list[Fact]]] = [
        {} for _ in range(num_components)
    ]
    for fid, cid in enumerate(component_ids):
        if cid < 0:
            continue
        fact = facts[fid]
        pid = parent_ids[fid]
        par = None if pid < 0 else facts[pid]
        parents[cid][fact] = par
        depths[cid][fact] = depth_ids[fid]
        children[cid].setdefault(fact, [])
        if par is not None:
            children[cid].setdefault(par, []).append(fact)

    segments: list[list[Segment]] = [[] for _ in range(num_components)]
    bounds = arena.wit_offsets.tolist()
    flat = arena.wit_indices.tolist()
    for vid, vt in enumerate(arena.view_tuples):
        row = flat[bounds[vid] : bounds[vid + 1]]
        if not row:
            continue
        cid = component_ids[row[0]]
        ordered = sorted(row, key=depth_ids.__getitem__)
        run = tuple(facts[fid] for fid in ordered)
        segments[cid].append(Segment(vt, run[0], run[-1], run))

    return [
        RootedComponent(
            facts[pivots[cid]],
            parents[cid],
            depths[cid],
            children[cid],
            segments[cid],
        )
        for cid in range(num_components)
    ]


def attach_session(manifest: Mapping[str, Any]) -> "SolveSession":
    """Attach to an exported instance and return a ready
    :class:`~repro.core.session.SolveSession`: arena attached, profile
    seeded from the manifest verdicts, and — when Algorithm 4 applies —
    the witness map and the pivot-rooted layout rebuilt from the
    shipped fact-ID arrays (the data dual graph itself stays lazy; no
    route needs its adjacency once the rooting is known)."""
    from repro.core.session import SolveSession, profile_from_dict

    arena = attach_arena(manifest)
    problem = arena.problem
    session = SolveSession.of(problem)
    session.__dict__["arena"] = arena
    session.__dict__["document"] = manifest["document"]
    session.__dict__["content_hash"] = manifest["content_hash"]

    profile_doc = manifest.get("profile")
    if profile_doc is not None:
        session.__dict__["profile"] = profile_from_dict(
            profile_doc, norm_delta_v=problem.norm_delta_v
        )
        if profile_doc["dp_tree_applies"]:
            shared = session._shared
            shared.witness_map = {
                vt: problem.witness(vt) for vt in arena.view_tuples
            }
            rooted_doc = manifest.get("rooted")
            if rooted_doc is not None:
                shared.rooted = _rebuild_rooted(arena, rooted_doc)
            else:  # pragma: no cover - manifests from export_session
                # always carry the layout; fall back to a local search.
                shared.rooted = session.data_dual().rooted_components()
    return session
