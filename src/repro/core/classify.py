"""Complexity classification — regenerating Tables II–V.

The paper situates its contribution in the complexity landscape of
deletion propagation summarized in its Tables II–V.  This module encodes
every row of those tables as a machine-checkable predicate over the
structural *flag dictionary* produced by
:func:`repro.relational.analysis.query_set_flags` — the same single
scan that backs the dispatcher's
:class:`~repro.core.session.StructureProfile`.  Classifying a problem
(or an existing session) therefore reuses the session's profile instead
of re-deriving any predicate; classifying a bare query sequence (or a
set with explicit functional dependencies) runs the shared scan once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence, Union

from repro.relational.analysis import (
    FunctionalDependency,
    query_set_flags,
)
from repro.relational.cq import ConjunctiveQuery

__all__ = [
    "LandscapeRow",
    "TABLE_II",
    "TABLE_III",
    "TABLE_IV",
    "TABLE_V",
    "PAPER_RESULTS",
    "classification_flags",
    "structure_flags",
    "verdict",
]

#: Row predicates are evaluated over the flag dictionary of
#: :func:`repro.relational.analysis.query_set_flags` — never over raw
#: queries, so classification shares the session's one structural scan.
Predicate = Callable[[Mapping[str, "bool | None"]], bool]

#: Anything classifiable: a query sequence, a problem, or a session.
Classifiable = Union[
    Sequence[ConjunctiveQuery], "object"  # DeletionPropagationProblem/SolveSession
]


@dataclass(frozen=True)
class LandscapeRow:
    """One row of the paper's complexity tables.

    ``predicate`` returns True when the row's query class contains a
    query set with the given structural flags; ``None`` marks rows whose
    class is parameterized in ways outside this library's scope (the
    parameterized-complexity rows of Table III).
    """

    table: str
    problem: str  # "source side-effect" | "view side-effect"
    complexity: str
    citation: str
    query_class: str
    predicate: Predicate | None


def _project_free_and_sj_free(flags) -> bool:
    return bool(flags["project_free"] and flags["self_join_free"])


def _all_key_preserving(flags) -> bool:
    return bool(flags["key_preserving"])


def _non_key_preserving(flags) -> bool:
    return not flags["key_preserving"]


def _head_dominated(flags) -> bool:
    return flags["head_domination"] is True


def _fd_head_dominated(flags) -> bool:
    return flags["fd_head_domination"] is True


def _not_head_dominated(flags) -> bool:
    return flags["head_domination"] is False


def _not_fd_head_dominated(flags) -> bool:
    return flags["fd_head_domination"] is False


def _triad_free_sj_free(flags) -> bool:
    return flags["triad"] is False


def _fd_triad_free_sj_free(flags) -> bool:
    return flags["fd_induced_triad"] is False


def _with_triad(flags) -> bool:
    return flags["triad"] is True


def _with_fd_triad(flags) -> bool:
    return flags["fd_induced_triad"] is True


TABLE_II: tuple[LandscapeRow, ...] = (
    LandscapeRow(
        "II", "source side-effect", "PTime", "Buneman et al. 2002 [6]",
        "project-free & sj-free conjunctive queries",
        _project_free_and_sj_free,
    ),
    LandscapeRow(
        "II", "source side-effect", "PTime", "Cong et al. 2012 [15]",
        "key-preserving conjunctive queries", _all_key_preserving,
    ),
    LandscapeRow(
        "II", "source side-effect", "PTime", "Freire et al. 2015 [24]",
        "triad-free & sj-free conjunctive queries", _triad_free_sj_free,
    ),
    LandscapeRow(
        "II", "source side-effect", "PTime", "Freire et al. 2015 [24]",
        "fd-induced-triad-free & sj-free conjunctive queries",
        _fd_triad_free_sj_free,
    ),
)

TABLE_III: tuple[LandscapeRow, ...] = (
    LandscapeRow(
        "III", "source side-effect", "NP-complete", "Buneman et al. 2002 [6]",
        "select-free conjunctive queries", None,
    ),
    LandscapeRow(
        "III", "source side-effect", "NP-complete", "Cong et al. 2012 [15]",
        "non-key-preserving conjunctive queries", _non_key_preserving,
    ),
    LandscapeRow(
        "III", "source side-effect", "NP-complete", "Freire et al. 2015 [24]",
        "queries with triad", _with_triad,
    ),
    LandscapeRow(
        "III", "source side-effect", "NP-complete", "Freire et al. 2015 [24]",
        "queries with fd-induced triad", _with_fd_triad,
    ),
    LandscapeRow(
        "III", "source side-effect", "co-W[1]-complete", "Miao et al. [36]",
        "conjunctive queries for parameter query size or #variables", None,
    ),
    LandscapeRow(
        "III", "source side-effect", "co-W[SAT]-hard", "Miao et al. [36]",
        "positive queries for parameter #variables", None,
    ),
    LandscapeRow(
        "III", "source side-effect", "co-W[t]-hard", "Miao et al. [36]",
        "first-order queries for parameter query size", None,
    ),
    LandscapeRow(
        "III", "source side-effect", "co-W[P]-hard", "Miao et al. [36]",
        "first-order queries for parameter #variables", None,
    ),
)

TABLE_IV: tuple[LandscapeRow, ...] = (
    LandscapeRow(
        "IV", "view side-effect", "PTime", "Buneman et al. 2002 [6]",
        "project-free & sj-free conjunctive queries",
        _project_free_and_sj_free,
    ),
    LandscapeRow(
        "IV", "view side-effect", "PTime", "Cong et al. 2012 [15]",
        "key-preserving conjunctive queries", _all_key_preserving,
    ),
    LandscapeRow(
        "IV", "view side-effect", "PTime", "Kimelfeld et al. 2012 [30]",
        "sj-free conjunctive queries having head-domination",
        _head_dominated,
    ),
    LandscapeRow(
        "IV", "view side-effect", "PTime", "Kimelfeld et al. 2012 [30]",
        "sj-free conjunctive queries having fd-head-domination",
        _fd_head_dominated,
    ),
    LandscapeRow(
        "IV", "view side-effect", "FPT", "Kimelfeld et al. 2013 [32]",
        "sj-free conjunctive queries having level-k head-domination", None,
    ),
)

TABLE_V: tuple[LandscapeRow, ...] = (
    LandscapeRow(
        "V", "view side-effect", "NP-complete", "Buneman et al. 2002 [6]",
        "select-free conjunctive queries", None,
    ),
    LandscapeRow(
        "V", "view side-effect", "NP-complete", "Cong et al. 2012 [15]",
        "non-key-preserving conjunctive queries", _non_key_preserving,
    ),
    LandscapeRow(
        "V", "view side-effect", "NP-complete", "Kimelfeld et al. 2012 [30]",
        "non-head-domination conjunctive queries", _not_head_dominated,
    ),
    LandscapeRow(
        "V", "view side-effect", "NP-complete", "Kimelfeld et al. 2012 [30]",
        "non fd-head-domination conjunctive queries", _not_fd_head_dominated,
    ),
    LandscapeRow(
        "V", "view side-effect", "NP(k)-complete", "Miao et al. 2017 [36]",
        "conjunctive queries for bounded source deletions", None,
    ),
    LandscapeRow(
        "V", "view side-effect", "ΣP2-complete", "Miao et al. 2016 [37]",
        "conjunctive queries under general settings", None,
    ),
)

#: This paper's own results (Section III–IV), with predicates over the
#: *multi-query* input.
PAPER_RESULTS: tuple[LandscapeRow, ...] = (
    LandscapeRow(
        "paper", "view side-effect",
        "inapprox within O(2^(log^(1-δ)‖V‖)) unless P=NP (Thm 1)",
        "this paper",
        "two or more project-free conjunctive queries",
        lambda flags: bool(
            flags["multiple_queries"] and flags["project_free"]
        ),
    ),
    LandscapeRow(
        "paper", "view side-effect",
        "O(2·sqrt(l·‖V‖·log‖ΔV‖))-approx (Claim 1)", "this paper",
        "key-preserving conjunctive queries (any number)",
        _all_key_preserving,
    ),
    LandscapeRow(
        "paper", "view side-effect",
        "l-approx (Thm 3) and 2·sqrt(‖V‖)-approx (Thm 4)", "this paper",
        "forest case: dual hypergraph components are hypertrees",
        lambda flags: bool(flags["forest_case"]),
    ),
    LandscapeRow(
        "paper", "view side-effect",
        "PTime via dynamic programming (Alg. 4)", "this paper",
        "forest case with pivot tuples (data-dependent)", None,
    ),
)


def structure_flags(
    source: Classifiable,
    fds: Sequence[FunctionalDependency] = (),
) -> dict[str, bool | None]:
    """The full structural flag dictionary of ``source``.

    ``source`` may be a problem or :class:`SolveSession` — then the
    session's cached :class:`StructureProfile` answers and **no
    predicate is re-evaluated** (explicit ``fds`` force a fresh scan:
    the profile is computed without FDs) — or a raw query sequence,
    which runs :func:`~repro.relational.analysis.query_set_flags` once.
    """
    from repro.core.session import SolveSession

    if isinstance(source, SolveSession):
        if not fds:
            return source.profile.classification_flags()
        source = source.problem
    queries = getattr(source, "queries", None)
    if queries is not None and not isinstance(source, (list, tuple)):
        if not fds:
            return SolveSession.of(source).profile.classification_flags()
        return query_set_flags(list(queries), fds)
    return query_set_flags(list(source), fds)


def classification_flags(
    source: Classifiable,
    fds: Sequence[FunctionalDependency] = (),
) -> dict[str, bool]:
    """All *defined* structural flags of ``source`` in one dictionary
    (the historical public shape: single-query analyses appear only
    when they are defined, instead of carrying ``None``)."""
    flags = structure_flags(source, fds)
    out = {
        "multiple_queries": bool(flags["multiple_queries"]),
        "project_free": bool(flags["project_free"]),
        "self_join_free": bool(flags["self_join_free"]),
        "key_preserving": bool(flags["key_preserving"]),
        "forest_case": bool(flags["forest_case"]),
    }
    for name in (
        "head_domination",
        "fd_head_domination",
        "triad",
        "fd_induced_triad",
        "hierarchical",
    ):
        if flags.get(name) is not None:
            out[name] = bool(flags[name])
    return out


def verdict(
    source: Classifiable,
    fds: Sequence[FunctionalDependency] = (),
) -> list[LandscapeRow]:
    """All landscape rows (prior work + this paper) whose class contains
    the query set, most specific paper results included.  The flags are
    computed once (or read off the session profile); every row predicate
    is a cheap dictionary lookup."""
    flags = structure_flags(source, fds)
    rows = TABLE_II + TABLE_III + TABLE_IV + TABLE_V + PAPER_RESULTS
    return [
        row
        for row in rows
        if row.predicate is not None and row.predicate(flags)
    ]
