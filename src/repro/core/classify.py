"""Complexity classification — regenerating Tables II–V.

The paper situates its contribution in the complexity landscape of
deletion propagation summarized in its Tables II–V.  This module encodes
every row of those tables as a machine-checkable predicate over query
sets (via :mod:`repro.relational.analysis`) and classifies concrete
inputs, which is how bench E10 regenerates the tables and how
:func:`verdict` explains which of the paper's results applies to a
problem instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ReproError
from repro.relational.analysis import (
    FunctionalDependency,
    has_fd_head_domination,
    has_fd_induced_triad,
    has_head_domination,
    has_triad,
    is_hierarchical,
)
from repro.relational.cq import ConjunctiveQuery

__all__ = [
    "LandscapeRow",
    "TABLE_II",
    "TABLE_III",
    "TABLE_IV",
    "TABLE_V",
    "PAPER_RESULTS",
    "classification_flags",
    "verdict",
]

Predicate = Callable[
    [Sequence[ConjunctiveQuery], Sequence[FunctionalDependency]], bool
]


@dataclass(frozen=True)
class LandscapeRow:
    """One row of the paper's complexity tables.

    ``predicate`` returns True when the row's query class contains the
    given query set (with its functional dependencies); ``None`` marks
    rows whose class is parameterized in ways outside this library's
    scope (the parameterized-complexity rows of Table III).
    """

    table: str
    problem: str  # "source side-effect" | "view side-effect"
    complexity: str
    citation: str
    query_class: str
    predicate: Predicate | None


def _single(queries: Sequence[ConjunctiveQuery]) -> ConjunctiveQuery | None:
    return queries[0] if len(queries) == 1 else None


def _all_project_free(queries, fds) -> bool:
    return all(q.is_project_free() for q in queries)


def _all_sj_free(queries, fds) -> bool:
    return all(q.is_self_join_free() for q in queries)


def _all_key_preserving(queries, fds) -> bool:
    return all(q.is_key_preserving() for q in queries)


def _project_free_and_sj_free(queries, fds) -> bool:
    return _all_project_free(queries, fds) and _all_sj_free(queries, fds)


def _non_key_preserving(queries, fds) -> bool:
    return not _all_key_preserving(queries, fds)


def _head_dominated(queries, fds) -> bool:
    q = _single(queries)
    return q is not None and q.is_self_join_free() and has_head_domination(q)


def _fd_head_dominated(queries, fds) -> bool:
    q = _single(queries)
    return (
        q is not None
        and q.is_self_join_free()
        and has_fd_head_domination(q, fds)
    )


def _not_head_dominated(queries, fds) -> bool:
    q = _single(queries)
    return (
        q is not None
        and q.is_self_join_free()
        and not has_head_domination(q)
    )


def _not_fd_head_dominated(queries, fds) -> bool:
    q = _single(queries)
    return (
        q is not None
        and q.is_self_join_free()
        and not has_fd_head_domination(q, fds)
    )


def _triad_free_sj_free(queries, fds) -> bool:
    q = _single(queries)
    return q is not None and q.is_self_join_free() and not has_triad(q)


def _fd_triad_free_sj_free(queries, fds) -> bool:
    q = _single(queries)
    return (
        q is not None
        and q.is_self_join_free()
        and not has_fd_induced_triad(q, fds)
    )


def _with_triad(queries, fds) -> bool:
    q = _single(queries)
    return q is not None and q.is_self_join_free() and has_triad(q)


def _with_fd_triad(queries, fds) -> bool:
    q = _single(queries)
    return (
        q is not None
        and q.is_self_join_free()
        and has_fd_induced_triad(q, fds)
    )


TABLE_II: tuple[LandscapeRow, ...] = (
    LandscapeRow(
        "II", "source side-effect", "PTime", "Buneman et al. 2002 [6]",
        "project-free & sj-free conjunctive queries",
        _project_free_and_sj_free,
    ),
    LandscapeRow(
        "II", "source side-effect", "PTime", "Cong et al. 2012 [15]",
        "key-preserving conjunctive queries", _all_key_preserving,
    ),
    LandscapeRow(
        "II", "source side-effect", "PTime", "Freire et al. 2015 [24]",
        "triad-free & sj-free conjunctive queries", _triad_free_sj_free,
    ),
    LandscapeRow(
        "II", "source side-effect", "PTime", "Freire et al. 2015 [24]",
        "fd-induced-triad-free & sj-free conjunctive queries",
        _fd_triad_free_sj_free,
    ),
)

TABLE_III: tuple[LandscapeRow, ...] = (
    LandscapeRow(
        "III", "source side-effect", "NP-complete", "Buneman et al. 2002 [6]",
        "select-free conjunctive queries", None,
    ),
    LandscapeRow(
        "III", "source side-effect", "NP-complete", "Cong et al. 2012 [15]",
        "non-key-preserving conjunctive queries", _non_key_preserving,
    ),
    LandscapeRow(
        "III", "source side-effect", "NP-complete", "Freire et al. 2015 [24]",
        "queries with triad", _with_triad,
    ),
    LandscapeRow(
        "III", "source side-effect", "NP-complete", "Freire et al. 2015 [24]",
        "queries with fd-induced triad", _with_fd_triad,
    ),
    LandscapeRow(
        "III", "source side-effect", "co-W[1]-complete", "Miao et al. [36]",
        "conjunctive queries for parameter query size or #variables", None,
    ),
    LandscapeRow(
        "III", "source side-effect", "co-W[SAT]-hard", "Miao et al. [36]",
        "positive queries for parameter #variables", None,
    ),
    LandscapeRow(
        "III", "source side-effect", "co-W[t]-hard", "Miao et al. [36]",
        "first-order queries for parameter query size", None,
    ),
    LandscapeRow(
        "III", "source side-effect", "co-W[P]-hard", "Miao et al. [36]",
        "first-order queries for parameter #variables", None,
    ),
)

TABLE_IV: tuple[LandscapeRow, ...] = (
    LandscapeRow(
        "IV", "view side-effect", "PTime", "Buneman et al. 2002 [6]",
        "project-free & sj-free conjunctive queries",
        _project_free_and_sj_free,
    ),
    LandscapeRow(
        "IV", "view side-effect", "PTime", "Cong et al. 2012 [15]",
        "key-preserving conjunctive queries", _all_key_preserving,
    ),
    LandscapeRow(
        "IV", "view side-effect", "PTime", "Kimelfeld et al. 2012 [30]",
        "sj-free conjunctive queries having head-domination",
        _head_dominated,
    ),
    LandscapeRow(
        "IV", "view side-effect", "PTime", "Kimelfeld et al. 2012 [30]",
        "sj-free conjunctive queries having fd-head-domination",
        _fd_head_dominated,
    ),
    LandscapeRow(
        "IV", "view side-effect", "FPT", "Kimelfeld et al. 2013 [32]",
        "sj-free conjunctive queries having level-k head-domination", None,
    ),
)

TABLE_V: tuple[LandscapeRow, ...] = (
    LandscapeRow(
        "V", "view side-effect", "NP-complete", "Buneman et al. 2002 [6]",
        "select-free conjunctive queries", None,
    ),
    LandscapeRow(
        "V", "view side-effect", "NP-complete", "Cong et al. 2012 [15]",
        "non-key-preserving conjunctive queries", _non_key_preserving,
    ),
    LandscapeRow(
        "V", "view side-effect", "NP-complete", "Kimelfeld et al. 2012 [30]",
        "non-head-domination conjunctive queries", _not_head_dominated,
    ),
    LandscapeRow(
        "V", "view side-effect", "NP-complete", "Kimelfeld et al. 2012 [30]",
        "non fd-head-domination conjunctive queries", _not_fd_head_dominated,
    ),
    LandscapeRow(
        "V", "view side-effect", "NP(k)-complete", "Miao et al. 2017 [36]",
        "conjunctive queries for bounded source deletions", None,
    ),
    LandscapeRow(
        "V", "view side-effect", "ΣP2-complete", "Miao et al. 2016 [37]",
        "conjunctive queries under general settings", None,
    ),
)

#: This paper's own results (Section III–IV), with predicates over the
#: *multi-query* input.
PAPER_RESULTS: tuple[LandscapeRow, ...] = (
    LandscapeRow(
        "paper", "view side-effect",
        "inapprox within O(2^(log^(1-δ)‖V‖)) unless P=NP (Thm 1)",
        "this paper",
        "two or more project-free conjunctive queries",
        lambda queries, fds: len(queries) >= 2
        and _all_project_free(queries, fds),
    ),
    LandscapeRow(
        "paper", "view side-effect",
        "O(2·sqrt(l·‖V‖·log‖ΔV‖))-approx (Claim 1)", "this paper",
        "key-preserving conjunctive queries (any number)",
        _all_key_preserving,
    ),
    LandscapeRow(
        "paper", "view side-effect",
        "l-approx (Thm 3) and 2·sqrt(‖V‖)-approx (Thm 4)", "this paper",
        "forest case: dual hypergraph components are hypertrees",
        lambda queries, fds: _forest(queries),
    ),
    LandscapeRow(
        "paper", "view side-effect",
        "PTime via dynamic programming (Alg. 4)", "this paper",
        "forest case with pivot tuples (data-dependent)", None,
    ),
)


def _forest(queries: Sequence[ConjunctiveQuery]) -> bool:
    from repro.hypergraph.dual import is_forest_case

    return all(q.is_key_preserving() for q in queries) and is_forest_case(
        queries
    )


def classification_flags(
    queries: Sequence[ConjunctiveQuery],
    fds: Sequence[FunctionalDependency] = (),
) -> dict[str, bool]:
    """All structural flags of a query set in one dictionary."""
    single = _single(queries)
    flags = {
        "multiple_queries": len(queries) > 1,
        "project_free": _all_project_free(queries, fds),
        "self_join_free": _all_sj_free(queries, fds),
        "key_preserving": _all_key_preserving(queries, fds),
        "forest_case": _forest(queries),
    }
    if single is not None and single.is_self_join_free():
        flags["head_domination"] = has_head_domination(single)
        flags["fd_head_domination"] = has_fd_head_domination(single, fds)
        flags["triad"] = has_triad(single)
        flags["fd_induced_triad"] = has_fd_induced_triad(single, fds)
        flags["hierarchical"] = is_hierarchical(single)
    return flags


def verdict(
    queries: Sequence[ConjunctiveQuery],
    fds: Sequence[FunctionalDependency] = (),
) -> list[LandscapeRow]:
    """All landscape rows (prior work + this paper) whose class contains
    the query set, most specific paper results included."""
    rows = TABLE_II + TABLE_III + TABLE_IV + TABLE_V + PAPER_RESULTS
    out = []
    for row in rows:
        if row.predicate is None:
            continue
        try:
            applies = row.predicate(queries, fds)
        except ReproError:
            # A predicate defined only on a narrower query class (e.g.
            # key-preserving analyses on a non-key-preserving set) means
            # "row does not apply" — anything else is a real bug and
            # must surface, not be classified away.
            applies = False
        if applies:
            out.append(row)
    return out
