"""Bit-exact numpy kernels over CSR slabs.

The vectorized solve paths (:mod:`repro.core.oracle`,
:mod:`repro.core.local_search`, :mod:`repro.core.greedy`) must make the
*same floating-point decisions* as the scalar loops they replace — the
differential suites compare them against :mod:`repro.core.reference`
move-for-move.  Floats make that non-trivial: the weights are inexact
doubles, so ``a + b + c`` and ``a + (b + c)`` can differ in the last
ulp, and a segment sum computed with a different association could flip
a ``cost < current_cost`` decision on a tie.

The helpers here therefore standardize on **sequential left folds**:

* :func:`seq_segment_sum` wraps :func:`numpy.bincount`, whose C kernel
  accumulates ``out[row[i]] += w[i]`` in input order — for each segment
  this is exactly the left-to-right fold the scalar loops perform, with
  masked-out entries contributing ``+0.0`` (which is bitwise inert for
  the non-negative partial sums that occur here).  ``np.add.reduceat``
  / ``np.add.reduce`` are deliberately avoided: they switch to pairwise
  summation for longer runs, which is *better* numerically but *not*
  what the scalar twins compute.
* :func:`seq_sum` is the whole-array variant (one segment).
* :func:`concat_rows` gathers multiple CSR rows into one flat slab
  (values + segment ids), preserving row order and in-row order, so a
  fold over the slab reproduces the nested scalar loop order.
* :func:`first_occurrence_mask` marks the first occurrence of every
  value in a flat array — the vector form of the scalar "``hits`` went
  0 → 1, account the transition once" pattern, in transition order.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "concat_rows",
    "first_occurrence_mask",
    "seq_segment_sum",
    "seq_sum",
]

_I64 = np.int64


def concat_rows(
    offsets: np.ndarray,
    indices: np.ndarray,
    ids: np.ndarray,
    want_rowid: bool = True,
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
    """Gather the CSR rows ``ids`` into one flat slab.

    Returns ``(flat, rowid, rowptr)`` where ``flat`` concatenates
    ``indices[offsets[i]:offsets[i+1]]`` for each ``i`` in ``ids`` (row
    order and in-row order preserved, duplicate ids allowed),
    ``rowid[j]`` is the position *within ids* of the row slot ``j``
    came from (``None`` unless ``want_rowid``), and ``rowptr`` is the
    per-row offset vector into ``flat`` (``len(ids) + 1`` entries).

    The hot paths call this dozens of times per solve on slabs of a few
    hundred entries, where per-call numpy dispatch dominates — hence no
    dtype normalization beyond what indexing requires.
    """
    ids = np.asarray(ids)
    if ids.size == 0:
        empty = np.empty(0, dtype=_I64)
        return empty, empty.copy() if want_rowid else None, np.zeros(
            1, dtype=_I64
        )
    starts = offsets[ids]
    lengths = offsets[1:][ids] - starts
    rowptr = np.zeros(ids.size + 1, dtype=_I64)
    np.cumsum(lengths, out=rowptr[1:])
    total = int(rowptr[-1])
    flat = indices[
        np.arange(total, dtype=_I64) + (starts - rowptr[:-1]).repeat(lengths)
    ]
    rowid = (
        np.arange(ids.size, dtype=_I64).repeat(lengths)
        if want_rowid
        else None
    )
    return flat, rowid, rowptr


def seq_segment_sum(
    rowid: np.ndarray, values: np.ndarray, num_rows: int
) -> np.ndarray:
    """Per-segment sequential left fold: ``out[rowid[i]] += values[i]``
    in input order (the scalar loop's association, bit for bit)."""
    return np.bincount(rowid, weights=values, minlength=num_rows)


def seq_sum(values: np.ndarray) -> float:
    """Whole-array sequential left fold from ``0.0`` (bitwise identical
    to ``acc = 0.0; for v in values: acc += v``)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    zeros = np.zeros(values.size, dtype=_I64)
    return float(np.bincount(zeros, weights=values, minlength=1)[0])


def first_occurrence_mask(flat: np.ndarray) -> np.ndarray:
    """Boolean mask selecting the first occurrence of each distinct
    value in ``flat`` (in array order)."""
    mask = np.zeros(flat.size, dtype=bool)
    if flat.size:
        _, first = np.unique(flat, return_index=True)
        mask[first] = True
    return mask
