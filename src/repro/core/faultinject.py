"""Deterministic fault injection for the resilient solve runtime.

The pool supervisor in :mod:`repro.core.portfolio` promises recovery
from crashed workers, hung tasks, and transient failures.  Promises
about error paths rot unless the paths run, so this module lets the
test suite (and CI's fault matrix) trigger each failure mode
deterministically instead of trusting the supervisor on faith.

Activation is **environment-driven and off by default** — production
and normal test runs pay one ``os.environ.get`` per instrumented site
and nothing else:

* ``REPRO_FAULTS`` — comma-separated fault specs
  ``<mode>@<site>[:<key>[:<count>]]``:

  - ``mode`` — ``crash`` (``os._exit(3)``, the worker dies
    mid-task), ``hang`` (a non-cooperative ``time.sleep`` that ignores
    deadlines), or ``transient`` (raise :class:`InjectedFault`, a
    plain ``RuntimeError`` the retry machinery treats as retryable).
    The serve-layer chaos sites add **action modes** — ``drop``
    (connection closed mid-response), ``partial`` (half a wire line
    written, then the stream dies), ``unlink`` (a live shared-memory
    segment removed), ``kill`` (``SIGKILL`` to the current process,
    fired *mid-write* at the journal-append site) — which
    :func:`maybe_inject` does not execute itself; the instrumented
    site asks :func:`inject_action` for the claimed mode and performs
    the fault where only it can (inside the stream writer, between
    two ``write`` calls of one journal record, …).
  - ``site`` — where the hook fires: ``delta`` (per ΔV batch task,
    keyed by request index), ``portfolio`` (per portfolio task, keyed
    by method name), ``solve`` (inside
    :func:`repro.core.resilience.solve_with_policy`'s attempt loop,
    keyed by method name), ``serve-write`` (per response write, keyed
    by op name), ``serve-batcher`` (per micro-batch, keyed by instance
    hash), ``journal-append`` (per durable registration record, keyed
    by instance hash).
  - ``key`` — which task at the site (``*`` or omitted = any).
  - ``count`` — inject only the first ``count`` matching invocations
    (default 1), tracked **across processes** via marker files so a
    re-dispatched task observes "fail once, then succeed".

* ``REPRO_FAULT_DIR`` — directory for the cross-process markers.
  Without it every matching invocation injects (count is ignored),
  which is only safe for ``transient``.
* ``REPRO_FAULT_HANG_SECONDS`` — hang duration (default 60).

Example — the CI matrix's crash leg::

    REPRO_FAULTS="crash@delta:1" REPRO_FAULT_DIR=$(mktemp -d) \\
        python -m pytest tests/core/test_faultinject.py -k crash
"""

from __future__ import annotations

import os
import time

__all__ = ["InjectedFault", "inject_action", "maybe_inject", "parse_faults"]

ENV_FAULTS = "REPRO_FAULTS"
ENV_DIR = "REPRO_FAULT_DIR"
ENV_HANG_SECONDS = "REPRO_FAULT_HANG_SECONDS"

#: Modes :func:`maybe_inject` executes itself.
_EXEC_MODES = ("crash", "hang", "transient")
#: Action modes the instrumented site executes (serve chaos sites).
_ACTION_MODES = ("drop", "partial", "unlink", "kill")
_MODES = _EXEC_MODES + _ACTION_MODES


class InjectedFault(RuntimeError):
    """The transient fault mode's exception.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the policy
    layer must classify it as retryable, exactly like a real
    infrastructure hiccup would be.
    """


def parse_faults(spec: str) -> list[tuple[str, str, str, int]]:
    """Parse ``REPRO_FAULTS`` into ``(mode, site, key, count)`` tuples.

    Malformed entries raise :class:`ValueError` — a silently ignored
    fault spec would make a recovery test pass vacuously.
    """
    entries: list[tuple[str, str, str, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        mode, sep, rest = part.partition("@")
        mode = mode.strip()
        if not sep or mode not in _MODES:
            raise ValueError(
                f"bad fault spec {part!r}: expected <mode>@<site>[:<key>"
                f"[:<count>]] with mode in {_MODES}"
            )
        bits = rest.split(":")
        site = bits[0].strip()
        key = bits[1].strip() if len(bits) > 1 and bits[1].strip() else "*"
        count = int(bits[2]) if len(bits) > 2 else 1
        if not site:
            raise ValueError(f"bad fault spec {part!r}: empty site")
        entries.append((mode, site, key, count))
    return entries


def _claim(mode: str, site: str, key: str, count: int) -> bool:
    """Should this invocation inject?  True for the first ``count``
    matching invocations, counted across processes via ``O_EXCL``
    marker files in ``REPRO_FAULT_DIR``."""
    directory = os.environ.get(ENV_DIR)
    if directory is None:
        return True
    for n in range(count):
        marker = os.path.join(directory, f"{mode}-{site}-{key}-{n}")
        try:
            handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        except OSError:
            return False  # unusable marker dir: do not inject
        os.close(handle)
        return True
    return False


def inject_action(site: str, key: object) -> str | None:
    """Claim and return the fault mode armed for ``site``/``key``, or
    ``None`` when nothing matches.

    The site-executed twin of :func:`maybe_inject`: serve chaos sites
    (response writer, micro-batcher, journal appender) call this and
    perform the claimed fault themselves, because only they can fault
    *mid-operation* — half a line on the wire, half a record on disk.
    Claiming observes the same cross-process ``count`` markers, so a
    ``kill@journal-append`` spec fires exactly once across a
    kill-restart sequence.
    """
    spec = os.environ.get(ENV_FAULTS)
    if not spec:
        return None
    wanted = str(key)
    for mode, fault_site, fault_key, count in parse_faults(spec):
        if fault_site != site or (fault_key != "*" and fault_key != wanted):
            continue
        if not _claim(mode, site, fault_key, count):
            continue
        return mode
    return None


def maybe_inject(site: str, key: object) -> None:
    """Fault-injection hook: no-op unless ``REPRO_FAULTS`` matches
    ``site``/``key``, in which case the configured failure mode fires.
    Called from the pool worker tasks and the policy attempt loop.
    """
    mode = inject_action(site, key)
    if mode is None:
        return
    if mode == "crash":
        os._exit(3)
    if mode == "hang":
        time.sleep(float(os.environ.get(ENV_HANG_SECONDS, "60")))
        return
    if mode == "transient":
        raise InjectedFault(f"injected transient fault at {site}:{key}")
    # An action mode reached a site that cannot perform it: fail the
    # run loudly — a silently dropped fault spec makes a chaos leg
    # pass vacuously.
    raise InjectedFault(
        f"fault mode {mode!r} needs an action-aware site, but plain "
        f"maybe_inject ran at {site}:{key}"
    )
