"""Solver registry and structure-aware dispatch.

``solve(problem)`` picks the strongest applicable method by walking a
declarative **route table**: an ordered list of
``(predicate over the StructureProfile, solver over the SolveSession)``
pairs.  The profile is computed once per instance by the
:class:`~repro.core.session.SolveSession`, so dispatch never re-runs the
structural scans.  The routes, in order:

1. **Balanced** problems: exact DP when the pivot-forest structure holds,
   else the Lemma 1 PN-PSC pipeline.
2. Empty ΔV: the trivial empty solution.
3. Standard problems with a single deleted view tuple: exact argmin.
4. Non-key-preserving inputs: fall back to exact search.
5. Pivot-forest structure: Algorithm 4 (exact, polynomial).
6. Forest case: run **both** Algorithm 1 (``PrimeDualVSE``) and
   Algorithm 3 (``LowDegTreeVSETwo``) and keep the cheaper — the paper
   notes the ``2·sqrt(‖V‖)`` bound "is sometimes better than factor l".
   The winner is labeled ``auto:<winner>`` and both candidates' costs
   are recorded in the :class:`SolveReport` trace.
7. Small/medium key-preserving instances (``‖V‖`` up to
   ``_ILP_ROUTE_MAX_NORM_V``) with no special structure: the
   arena-compiled exact ILP (:mod:`repro.lp.ilp`) — an exact answer in
   milliseconds where the general pipeline only approximates.
8. Otherwise: the Claim 1 RBSC pipeline.

``solve_report`` returns the full :class:`SolveReport` envelope (the
:class:`~repro.core.solution.Propagation` plus the route taken, the
per-stage timings, and the producing solver's
:class:`~repro.core.oracle.OracleCounters`); ``solve`` is the
propagation-only wrapper.  Named solvers are exposed directly via
``solve(problem, method)``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SolverError
from repro.core.balanced import solve_balanced
from repro.core.dp_tree import solve_dp_tree
from repro.core.exact import (
    solve_exact,
    solve_exact_bruteforce,
    solve_exact_ilp,
)
from repro.core.general import solve_general
from repro.core.greedy import solve_greedy_max_coverage, solve_greedy_min_damage
from repro.core.lowdeg_tree import solve_lowdeg_tree_sweep
from repro.core.lp_rounding import solve_lp_rounding, solve_randomized_rounding
from repro.core.primal_dual import solve_primal_dual
from repro.core.problem import DeletionPropagationProblem
from repro.core.resilience import (
    AttemptRecord,
    Deadline,
    SolvePolicy,
    deadline_scope,
)
from repro.core.router import (
    DEFAULT_ILP_NORM_V,
    LearnedRouter,
    RoutePlan,
    StaticRouter,
    active_duel_winner,
    active_ilp_norm_v,
    active_plan,
    plan_scope,
    resolve_router,
)
from repro.core.session import SolveSession, StructureProfile
from repro.core.single_query import (
    solve_single_deletion,
    solve_single_query,
    solve_two_atom_mincut,
)
from repro.core.solution import Propagation

__all__ = [
    "SOLVERS",
    "ROUTE_TABLE",
    "Route",
    "RouteStage",
    "SolveReport",
    "available_solvers",
    "route_plan",
    "solve",
    "solve_report",
]

Solver = Callable[[DeletionPropagationProblem], Propagation]

SOLVERS: dict[str, Solver] = {
    "exact": solve_exact,
    "exact-bnb": solve_exact_bruteforce,
    "exact-ilp": solve_exact_ilp,
    "claim1": solve_general,
    "balanced-lowdeg": solve_balanced,
    "primal-dual": solve_primal_dual,
    "lowdeg-tree": solve_lowdeg_tree_sweep,
    "lp-rounding": solve_lp_rounding,
    "randomized-rounding": solve_randomized_rounding,
    "dp-tree": solve_dp_tree,
    "single-query": solve_single_query,
    "single-deletion": solve_single_deletion,
    "two-atom-mincut": solve_two_atom_mincut,
    "greedy-min-damage": solve_greedy_min_damage,
    "greedy-max-coverage": solve_greedy_max_coverage,
}


def available_solvers() -> list[str]:
    """Names accepted by :func:`solve` (besides ``"auto"``)."""
    return sorted(SOLVERS)


# ----------------------------------------------------------------------
# SolveReport envelope
# ----------------------------------------------------------------------


@dataclass
class RouteStage:
    """One solver execution inside a dispatch: what ran, how long it
    took, what it cost, and whether its answer was kept."""

    route: str  #: route-table entry (or ``forced:<name>``)
    method: str  #: the produced Propagation's method label
    seconds: float
    objective: float | None  #: the candidate's natural objective
    chosen: bool

    def as_dict(self) -> dict[str, object]:
        return {
            "route": self.route,
            "method": self.method,
            "seconds": self.seconds,
            "objective": self.objective,
            "chosen": self.chosen,
        }


@dataclass
class SolveReport:
    """The uniform dispatch envelope: the winning propagation plus how
    it was reached.

    ``trace`` holds every solver actually executed — for the forest
    duel that is both candidates, with the loser's cost preserved
    instead of silently discarded.

    ``attempts`` is the resilience trace: empty for a plain dispatch,
    and one :class:`~repro.core.resilience.AttemptRecord` per attempt
    (method tried, deadline hit, retry cause) when the solve ran under
    a :class:`~repro.core.resilience.SolvePolicy` or through the pool
    supervisor.
    """

    propagation: Propagation
    route: str  #: name of the route-table entry (or ``forced:<name>``)
    profile: StructureProfile
    trace: list[RouteStage] = field(default_factory=list)
    attempts: list[AttemptRecord] = field(default_factory=list)

    @property
    def method(self) -> str:
        return self.propagation.method

    @property
    def counters(self):
        """The producing solver's OracleCounters (``None`` when the
        winning route did not run on the elimination oracle)."""
        return self.propagation.counters

    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.trace)

    def summary(self) -> str:
        lines = [
            f"route {self.route}: {self.propagation.summary()}",
        ]
        for stage in self.trace:
            mark = "*" if stage.chosen else " "
            objective = (
                "-" if stage.objective is None else f"{stage.objective:g}"
            )
            lines.append(
                f"  {mark} {stage.method:<24} {stage.seconds * 1e3:8.2f} ms"
                f"  objective {objective}"
            )
        for record in self.attempts:
            lines.append(f"  ~ {record.summary()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Route table
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Route:
    """One dispatch rule: if ``applies(profile)``, answer with
    ``run(session)``."""

    name: str
    applies: Callable[[StructureProfile], bool]
    run: Callable[[SolveSession], Propagation]


#: Instances up to this ``‖V‖`` take the exact ILP route when no
#: stronger structural route applies — the arena-compiled backend
#: answers these in single-digit milliseconds (see BENCH_ilp_exact),
#: so an exact answer beats the Claim 1 approximation outright.  The
#: constant is now only the *default* gate: the active
#: :class:`~repro.core.router.RoutePlan` supplies the effective value
#: (``REPRO_ILP_NORM_V`` overrides, a learned router may move it).
_ILP_ROUTE_MAX_NORM_V = DEFAULT_ILP_NORM_V

#: The forest duel's candidate families, keyed as
#: :class:`~repro.core.router.RoutePlan.duel_winner` names them.
_DUEL_SOLVERS = {
    "primal-dual": solve_primal_dual,
    "lowdeg-tree": solve_lowdeg_tree_sweep,
}


def _run_trivial(session: SolveSession) -> Propagation:
    return Propagation(session.problem, (), method="auto-trivial")


def _run_forest_duel(session: SolveSession) -> Propagation:
    """Run Algorithms 1 and 3, keep the cheaper, label it with the
    winner (satellite: the losing candidate used to be discarded with
    no trace that the duel even happened).

    When the active route plan names a duel winner (a learned router
    with enough decided duels for this profile bucket), only that
    candidate runs — the duel-skip fast path measured in
    ``BENCH_routing.json``.

    Under an active deadline the duel degrades gracefully: once a first
    candidate exists, an expired deadline skips the remaining
    contender instead of raising — a one-candidate duel is still a
    correct (just possibly costlier) answer.
    """
    problem = session.problem
    deadline = session.deadline
    preferred = _DUEL_SOLVERS.get(active_duel_winner() or "")
    solvers = (
        (preferred,)
        if preferred is not None
        else (solve_primal_dual, solve_lowdeg_tree_sweep)
    )
    candidates = []
    for solver in solvers:
        if candidates and deadline is not None and deadline.expired:
            break
        start = time.perf_counter()
        candidate = solver(problem)
        candidates.append((candidate, time.perf_counter() - start))
    winner = min(candidates, key=lambda pair: pair[0].side_effect())[0]
    labeled = Propagation(
        problem,
        winner.deleted_facts,
        method=f"auto:{winner.method}",
        counters=winner.counters,
    )
    # Stash the duel stages for solve_report to splice into the trace.
    labeled.duel_stages = [
        RouteStage(
            route="forest-duel",
            method=candidate.method,
            seconds=seconds,
            objective=candidate.side_effect(),
            chosen=candidate is winner,
        )
        for candidate, seconds in candidates
    ]
    return labeled


ROUTE_TABLE: tuple[Route, ...] = (
    Route(
        "balanced-dp",
        lambda p: p.balanced and p.key_preserving and p.dp_tree_applies,
        lambda s: solve_dp_tree(s.problem),
    ),
    Route(
        "balanced",
        lambda p: p.balanced,
        lambda s: solve_balanced(s.problem),
    ),
    Route("trivial", lambda p: p.empty_delta, _run_trivial),
    Route(
        "single-deletion",
        lambda p: p.norm_delta_v == 1 and p.key_preserving,
        lambda s: solve_single_deletion(s.problem),
    ),
    Route(
        # Outside the paper's algorithmic class: fall back to exact.
        "exact-fallback",
        lambda p: not p.key_preserving,
        lambda s: solve_exact(s.problem),
    ),
    Route(
        "dp-tree",
        lambda p: p.dp_tree_applies,
        lambda s: solve_dp_tree(s.problem),
    ),
    Route(
        # Algorithms 1 and 3 walk the data dual graph, which is only
        # defined for sj-free queries; self-join forest inputs fall
        # through to the Claim 1 pipeline.
        "forest-duel",
        lambda p: p.forest_case and p.self_join_free,
        _run_forest_duel,
    ),
    Route(
        # Small/medium key-preserving instances outside every special
        # structure: the arena-compiled ILP answers *exactly* in
        # milliseconds where the Claim 1 pipeline only approximates.
        # Balanced problems never reach here (the balanced routes are
        # a catch-all for them); larger instances fall through to the
        # approximation below.
        "exact-ilp",
        lambda p: (
            not p.balanced
            and p.key_preserving
            and p.norm_v <= active_ilp_norm_v()
        ),
        lambda s: solve_exact_ilp(s.problem),
    ),
    Route("general", lambda p: True, lambda s: solve_general(s.problem)),
)


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------


def route_plan(
    problem: DeletionPropagationProblem | SolveSession,
    router: "str | StaticRouter | LearnedRouter | None" = None,
) -> RoutePlan:
    """The :class:`~repro.core.router.RoutePlan` an auto dispatch of
    ``problem`` would follow (``repro route explain`` prints it)."""
    session = (
        problem
        if isinstance(problem, SolveSession)
        else SolveSession.of(problem)
    )
    return resolve_router(router).plan(session.profile)


def _record_trace(session: SolveSession, report: SolveReport) -> None:
    """Append the dispatch to the trace store.  Best-effort by
    contract: recording failures must never surface as solve
    failures."""
    try:
        from repro.core.tracestore import default_store, record_from_report

        store = default_store()
        if store is not None:
            store.append(record_from_report(session, report))
    except Exception:
        pass


def solve_report(
    problem: DeletionPropagationProblem | SolveSession,
    method: str = "auto",
    deadline: Deadline | None = None,
    policy: SolvePolicy | None = None,
    rng: "random.Random | None" = None,
    router: "str | StaticRouter | LearnedRouter | None" = None,
) -> SolveReport:
    """Solve and return the full :class:`SolveReport` envelope.

    Accepts either a problem (a session is built or reused via
    :meth:`SolveSession.of`) or an existing session.  ``deadline``
    installs a cooperative per-request deadline around the dispatch
    (composing with any enclosing scope); ``policy`` delegates to
    :func:`repro.core.resilience.solve_with_policy` for the full
    deadline + retry + fallback-chain treatment, with ``rng`` (or a
    per-request seeded default) driving its backoff jitter.

    ``router`` picks the route planner for auto dispatch: ``"static"``
    (the declared table, the default), ``"learned"`` (the trace-store
    cost model), a router instance, or ``None`` to defer to the
    ``REPRO_ROUTER`` environment variable — unless an ambient plan is
    already installed (a policy chain re-entering the dispatcher), which
    then stays in force.
    """
    if policy is not None:
        from repro.core.resilience import solve_with_policy

        return solve_with_policy(
            problem,
            method=method,
            policy=policy,
            deadline=deadline,
            rng=rng,
            router=router,
        )
    if deadline is not None:
        with deadline_scope(deadline):
            return solve_report(problem, method=method, router=router)

    if isinstance(problem, SolveSession):
        session = problem
    else:
        session = SolveSession.of(problem)

    if method != "auto":
        try:
            solver = SOLVERS[method]
        except KeyError:
            raise SolverError(
                f"unknown method {method!r}; available: "
                f"{', '.join(available_solvers())} or 'auto'"
            ) from None
        start = time.perf_counter()
        propagation = solver(session.problem)
        seconds = time.perf_counter() - start
        report = SolveReport(
            propagation=propagation,
            route=f"forced:{method}",
            profile=session.profile,
            trace=[
                RouteStage(
                    route=f"forced:{method}",
                    method=propagation.method,
                    seconds=seconds,
                    objective=propagation.objective(),
                    chosen=True,
                )
            ],
        )
        _record_trace(session, report)
        return report

    profile = session.profile
    # An ambient plan (installed by an enclosing dispatch or a policy
    # chain) stays in force unless the caller names a router explicitly.
    plan = active_plan() if router is None else None
    if plan is None:
        plan = resolve_router(router).plan(profile)
    routes = {route.name: route for route in ROUTE_TABLE}
    # Walk in plan order; any table entry the plan does not name keeps
    # its declared position afterwards (the catch-all can never be
    # planned away).
    walk = [routes.pop(name) for name in plan.order if name in routes]
    walk.extend(routes.values())
    with plan_scope(plan):
        for route in walk:
            if not route.applies(profile):
                continue
            start = time.perf_counter()
            propagation = route.run(session)
            seconds = time.perf_counter() - start
            stages = getattr(propagation, "duel_stages", None)
            if stages is None:
                stages = [
                    RouteStage(
                        route=route.name,
                        method=propagation.method,
                        seconds=seconds,
                        objective=propagation.objective(),
                        chosen=True,
                    )
                ]
            report = SolveReport(
                propagation=propagation,
                route=route.name,
                profile=profile,
                trace=stages,
            )
            _record_trace(session, report)
            return report
    raise SolverError("route table exhausted (missing catch-all)")


def solve(
    problem: DeletionPropagationProblem,
    method: str = "auto",
    deadline: Deadline | None = None,
    policy: SolvePolicy | None = None,
    rng: "random.Random | None" = None,
    router: "str | StaticRouter | LearnedRouter | None" = None,
) -> Propagation:
    """Solve a deletion-propagation problem.

    ``method="auto"`` dispatches by structure via the route table (see
    module docstring); any name from :func:`available_solvers` forces a
    specific algorithm.  ``deadline`` / ``policy`` / ``rng`` add the
    resilience layer (see :mod:`repro.core.resilience`); ``router``
    picks the route planner (see :mod:`repro.core.router`).  Use
    :func:`solve_report` for the route trace, per-stage timings, and
    attempt trace.
    """
    return solve_report(
        problem,
        method=method,
        deadline=deadline,
        policy=policy,
        rng=rng,
        router=router,
    ).propagation
