"""Solver registry and structure-aware dispatch.

``solve(problem)`` picks the strongest applicable method:

1. **Balanced** problems: exact DP when the pivot-forest structure holds,
   else the Lemma 1 PN-PSC pipeline.
2. Standard problems with a single deleted view tuple: exact argmin.
3. Pivot-forest structure: Algorithm 4 (exact, polynomial).
4. Forest case: the better of Algorithm 1 (``PrimeDualVSE``) and
   Algorithm 3 (``LowDegTreeVSETwo``) — the paper notes the
   ``2·sqrt(‖V‖)`` bound "is sometimes better than factor l", so running
   both and keeping the cheaper is the natural production choice.
5. Otherwise: the Claim 1 RBSC pipeline.

Named solvers are also exposed directly via ``solve(problem, method)``.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SolverError
from repro.core.balanced import solve_balanced
from repro.core.dp_tree import applies_to as dp_applies, solve_dp_tree
from repro.core.exact import (
    solve_exact,
    solve_exact_bruteforce,
    solve_exact_ilp,
)
from repro.core.general import solve_general
from repro.core.greedy import solve_greedy_max_coverage, solve_greedy_min_damage
from repro.core.lowdeg_tree import solve_lowdeg_tree_sweep
from repro.core.lp_rounding import solve_lp_rounding, solve_randomized_rounding
from repro.core.primal_dual import solve_primal_dual
from repro.core.problem import (
    BalancedDeletionPropagationProblem,
    DeletionPropagationProblem,
)
from repro.core.single_query import (
    solve_single_deletion,
    solve_single_query,
    solve_two_atom_mincut,
)
from repro.core.solution import Propagation

__all__ = ["SOLVERS", "available_solvers", "solve"]

Solver = Callable[[DeletionPropagationProblem], Propagation]

SOLVERS: dict[str, Solver] = {
    "exact": solve_exact,
    "exact-bnb": solve_exact_bruteforce,
    "exact-ilp": solve_exact_ilp,
    "claim1": solve_general,
    "balanced-lowdeg": solve_balanced,
    "primal-dual": solve_primal_dual,
    "lowdeg-tree": solve_lowdeg_tree_sweep,
    "lp-rounding": solve_lp_rounding,
    "randomized-rounding": solve_randomized_rounding,
    "dp-tree": solve_dp_tree,
    "single-query": solve_single_query,
    "single-deletion": solve_single_deletion,
    "two-atom-mincut": solve_two_atom_mincut,
    "greedy-min-damage": solve_greedy_min_damage,
    "greedy-max-coverage": solve_greedy_max_coverage,
}


def available_solvers() -> list[str]:
    """Names accepted by :func:`solve` (besides ``"auto"``)."""
    return sorted(SOLVERS)


def solve(
    problem: DeletionPropagationProblem, method: str = "auto"
) -> Propagation:
    """Solve a deletion-propagation problem.

    ``method="auto"`` dispatches by structure (see module docstring);
    any name from :func:`available_solvers` forces a specific algorithm.
    """
    if method != "auto":
        try:
            solver = SOLVERS[method]
        except KeyError:
            raise SolverError(
                f"unknown method {method!r}; available: "
                f"{', '.join(available_solvers())} or 'auto'"
            ) from None
        return solver(problem)

    if isinstance(problem, BalancedDeletionPropagationProblem):
        if problem.is_key_preserving() and dp_applies(problem):
            return solve_dp_tree(problem)
        return solve_balanced(problem)

    if problem.deletion.is_empty():
        return Propagation(problem, (), method="auto-trivial")
    if problem.norm_delta_v == 1 and problem.is_key_preserving():
        return solve_single_deletion(problem)
    if not problem.is_key_preserving():
        # Outside the paper's algorithmic class: fall back to exact.
        return solve_exact(problem)
    if dp_applies(problem):
        return solve_dp_tree(problem)
    if problem.is_forest_case() and problem.is_self_join_free():
        # Algorithms 1 and 3 walk the data dual graph, which is only
        # defined for sj-free queries; self-join forest inputs fall
        # through to the Claim 1 pipeline.
        primal_dual = solve_primal_dual(problem)
        sweep = solve_lowdeg_tree_sweep(problem)
        return min(
            (primal_dual, sweep), key=lambda s: s.side_effect()
        )
    return solve_general(problem)
