"""Bounded deletion propagation (Table V's NP(k) row, Miao et al. [36]).

The variant where the number of source deletions is bounded in advance:
find ``ΔD`` with ``|ΔD| <= k`` eliminating all of ΔV and minimizing the
view side-effect, or report that no such ``ΔD`` exists.  Miao et al.
show the decision problem is ``NP(k)``-complete on combined complexity;
accordingly the solver here is an exact bounded-depth branch & bound.

``minimum_deletion_size`` (the smallest feasible ``k``) doubles as the
source-side optimum and is used to report *why* an instance is
infeasible at a given bound.
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.relational.tuples import Fact
from repro.core.problem import DeletionPropagationProblem
from repro.core.solution import Propagation
from repro.core.source_side_effect import solve_source_exact

__all__ = ["solve_bounded_exact", "minimum_deletion_size"]


def minimum_deletion_size(problem: DeletionPropagationProblem) -> int:
    """The smallest number of deletions that can eliminate all of ΔV."""
    return len(solve_source_exact(problem).deleted_facts)


def solve_bounded_exact(
    problem: DeletionPropagationProblem, k: int
) -> Propagation:
    """Minimum view side-effect among solutions with at most ``k``
    deletions.  Raises :class:`SolverError` when no feasible solution
    fits the bound (the message reports the minimum feasible size)."""
    if k < 0:
        raise SolverError("deletion bound k must be non-negative")
    requirements: list[frozenset[Fact]] = []
    seen: set[frozenset[Fact]] = set()
    for vt in problem.deleted_view_tuples():
        for witness in problem.witnesses(vt):
            if witness not in seen:
                seen.add(witness)
                requirements.append(witness)
    requirements.sort(key=lambda w: (len(w), sorted(map(repr, w))))

    delta = frozenset(problem.deleted_view_tuples())
    best_cost = float("inf")
    best: frozenset[Fact] | None = None
    deleted: set[Fact] = set()

    def side_effect() -> float:
        eliminated = problem.eliminated_by(deleted)
        return sum(
            problem.weight(vt) for vt in eliminated if vt not in delta
        )

    def recurse(index: int) -> None:
        nonlocal best_cost, best
        while index < len(requirements) and requirements[index] & deleted:
            index += 1
        cost = side_effect()
        if cost >= best_cost:
            return
        if index == len(requirements):
            best_cost = cost
            best = frozenset(deleted)
            return
        if len(deleted) >= k:
            return  # bound exhausted with requirements left
        for fact in sorted(requirements[index]):
            deleted.add(fact)
            recurse(index + 1)
            deleted.discard(fact)

    recurse(0)
    if best is None:
        if requirements:
            needed = minimum_deletion_size(problem)
            raise SolverError(
                f"no solution within k={k} deletions; the minimum "
                f"feasible size is {needed}"
            )
        best = frozenset()
    return Propagation(problem, best, method=f"bounded-exact(k={k})")
