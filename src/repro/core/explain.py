"""Human-readable explanations of deletion-propagation solutions.

A suggested ``ΔD`` is only actionable if the user can see *why* each
fact is on the list and *what it costs*.  :func:`explain_solution`
renders exactly that:

* per deleted fact: the ΔV tuples it helps eliminate (its coverage) and
  the preserved tuples it collaterally destroys;
* redundancy notes: facts whose coverage is already provided by the
  rest of the solution (none, after the solvers' reverse-delete passes);
* the bottom line: feasibility, side-effect, and — when the problem is
  small enough to solve exactly — the gap to the optimum.
"""

from __future__ import annotations

from repro.relational.tuples import Fact
from repro.relational.views import ViewTuple
from repro.core.solution import Propagation

__all__ = ["explain_solution", "coverage_of"]


def coverage_of(
    solution: Propagation,
) -> dict[Fact, tuple[list[ViewTuple], list[ViewTuple]]]:
    """Per deleted fact: ``(delta_covered, collateral_caused)``.

    ``delta_covered`` lists the ΔV tuples with some witness through the
    fact; ``collateral_caused`` the preserved tuples it (alone or with
    the rest of the deletion) eliminates through their witnesses.
    """
    problem = solution.problem
    delta = frozenset(problem.deleted_view_tuples())
    out: dict[Fact, tuple[list[ViewTuple], list[ViewTuple]]] = {}
    for fact in sorted(solution.deleted_facts):
        covered = sorted(
            vt for vt in problem.dependents(fact) if vt in delta
        )
        collateral = sorted(
            vt
            for vt in problem.dependents(fact)
            if vt not in delta and vt in solution.collateral
        )
        out[fact] = (covered, collateral)
    return out


def explain_solution(
    solution: Propagation, include_optimum_gap: bool = False
) -> str:
    """Render the full explanation as text.

    ``include_optimum_gap`` additionally solves the instance exactly
    (exponential in the worst case) and reports the gap.
    """
    problem = solution.problem
    lines = [solution.summary()]
    coverage = coverage_of(solution)
    for fact, (covered, collateral) in coverage.items():
        lines.append(f"delete {fact!r}")
        if covered:
            targets = ", ".join(repr(vt) for vt in covered[:4])
            suffix = " …" if len(covered) > 4 else ""
            lines.append(f"  eliminates from ΔV: {targets}{suffix}")
        else:
            lines.append("  eliminates from ΔV: nothing directly")
        if collateral:
            losses = ", ".join(repr(vt) for vt in collateral[:4])
            suffix = " …" if len(collateral) > 4 else ""
            weight = sum(problem.weight(vt) for vt in collateral)
            lines.append(
                f"  collateral (weight {weight:g}): {losses}{suffix}"
            )
        else:
            lines.append("  collateral: none")
    surviving = sorted(solution.surviving_delta)
    if surviving:
        lines.append(
            "WARNING — ΔV tuples left standing: "
            + ", ".join(repr(vt) for vt in surviving[:4])
        )
    if include_optimum_gap:
        from repro.core.exact import solve_exact

        optimum = solve_exact(problem)
        gap = solution.side_effect() - optimum.side_effect()
        lines.append(
            f"optimum side-effect {optimum.side_effect():g} "
            f"(gap {gap:g})"
        )
    return "\n".join(lines)
