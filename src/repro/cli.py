"""Command-line interface.

Usage (installed as module)::

    python -m repro.cli solve problem.json [--method auto] [--json] [--trace]
    python -m repro.cli solve problem.json [--deadline 0.5] [--retries 2]
                                           [--fallback claim1,greedy-min-damage]
                                           [--seed 42]
    python -m repro.cli solve problem.json --portfolio [--methods a,b] [--jobs N]
    python -m repro.cli classify problem.json
    python -m repro.cli repairs problem.json -k 3
    python -m repro.cli render problem.json
    python -m repro.cli sql problem.json
    python -m repro.cli stats problem.json
    python -m repro.cli insert problem.json Q4 Ada TODS XML
    python -m repro.cli example fig1 > problem.json
    python -m repro.cli experiments [--out EXPERIMENTS.md]
    python -m repro.cli fuzz [--seed 0] [--iterations 100] [--budget-seconds 60]
                             [--corpus tests/corpus] [--kinds chain,star] [--no-shrink]
    python -m repro.cli serve [--port 7341] [--unix PATH] [--jobs N]
                              [--preload problem.json] [--state-dir DIR]
                              [--drain-seconds 5]
    python -m repro.cli client ping|stats|health|register|solve|shutdown
                               [TARGET] [--connect host:port]
                               [--deletions JSON|@file] [--deadline 0.5]
                               [--shutdown-mode now|drain]
                               [--retry-overloaded N]

``solve`` loads a JSON problem document (see :mod:`repro.io.serialize`),
dispatches to the requested algorithm, and prints the deletion
suggestion; ``classify`` reports the structural flags and the complexity
rows that apply; ``repairs`` enumerates the cheapest distinct repairs;
``example`` emits ready-made documents for the paper's examples.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.classify import classification_flags, verdict
from repro.core.registry import available_solvers, solve, solve_report
from repro.io.serialize import (
    dump_problem,
    load_problem,
    problem_to_dict,
    solution_to_dict,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Deletion propagation for multiple key-preserving conjunctive "
            "queries (ICDE 2019 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve_cmd = sub.add_parser("solve", help="solve a problem document")
    solve_cmd.add_argument("problem", help="path to a JSON problem document")
    solve_cmd.add_argument(
        "--method",
        default="auto",
        choices=["auto"] + available_solvers(),
        help="solver to use (default: structure-aware auto dispatch)",
    )
    solve_cmd.add_argument(
        "--json", action="store_true", help="emit the solution as JSON"
    )
    solve_cmd.add_argument(
        "--explain",
        action="store_true",
        help="explain each deletion's coverage and collateral",
    )
    solve_cmd.add_argument(
        "--trace",
        action="store_true",
        help=(
            "print the dispatch route, the structure profile, and "
            "per-stage solver timings (ignored with --portfolio)"
        ),
    )
    solve_cmd.add_argument(
        "--portfolio",
        action="store_true",
        help=(
            "solve with several strategies concurrently and keep the "
            "best feasible propagation (see --methods / --jobs)"
        ),
    )
    solve_cmd.add_argument(
        "--methods",
        default=None,
        help=(
            "comma-separated strategy list for --portfolio "
            "(default: claim1,greedy-min-damage,greedy-max-coverage)"
        ),
    )
    solve_cmd.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for --portfolio (default: one per "
            "strategy capped at CPU count; 0 forces serial)"
        ),
    )
    solve_cmd.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-request wall-clock deadline; a solver that exceeds it "
            "degrades to its best-so-far feasible answer when one "
            "exists (route 'degraded:<method>')"
        ),
    )
    solve_cmd.add_argument(
        "--retries",
        type=int,
        default=0,
        help=(
            "extra attempts per method for transient failures, with "
            "exponential backoff (default: 0)"
        ),
    )
    solve_cmd.add_argument(
        "--fallback",
        default=None,
        metavar="M1,M2,...",
        help=(
            "ordered fallback methods tried when the requested method "
            "is inapplicable or out of retries, e.g. "
            "'claim1,greedy-min-damage'; the alias 'exact-chain' "
            "expands to the exact-ilp route's chain "
            "(exact-bnb,greedy-min-damage)"
        ),
    )
    solve_cmd.add_argument(
        "--seed",
        type=int,
        default=None,
        help=(
            "seed for the retry backoff jitter (default: a stable "
            "digest of the request, so repeated runs draw the same "
            "delays)"
        ),
    )
    solve_cmd.add_argument(
        "--router",
        default=None,
        choices=["static", "learned"],
        help=(
            "route planner for auto dispatch: 'static' replays the "
            "declared route table, 'learned' fits duel-winner / ILP-"
            "threshold / chain-order knobs from the trace store "
            "(default: the REPRO_ROUTER env var, else static)"
        ),
    )
    solve_cmd.add_argument(
        "--no-trace-store",
        action="store_true",
        help=(
            "do not append this dispatch to the solve trace store "
            "(equivalent to REPRO_TRACE=off)"
        ),
    )

    classify_cmd = sub.add_parser(
        "classify", help="report structure and complexity landscape rows"
    )
    classify_cmd.add_argument("problem", help="path to a JSON problem document")

    route_cmd = sub.add_parser(
        "route",
        help=(
            "inspect adaptive routing: 'explain' prints the route plan "
            "an auto dispatch of the problem would follow"
        ),
    )
    route_cmd.add_argument("action", choices=["explain"])
    route_cmd.add_argument("problem", help="path to a JSON problem document")
    route_cmd.add_argument(
        "--router",
        default=None,
        choices=["static", "learned"],
        help="route planner to explain (default: REPRO_ROUTER, else static)",
    )

    repairs_cmd = sub.add_parser(
        "repairs", help="enumerate the k cheapest distinct repairs"
    )
    repairs_cmd.add_argument("problem", help="path to a JSON problem document")
    repairs_cmd.add_argument("-k", type=int, default=3)

    render_cmd = sub.add_parser(
        "render", help="pretty-print a problem document (data + views)"
    )
    render_cmd.add_argument("problem", help="path to a JSON problem document")

    sql_cmd = sub.add_parser(
        "sql", help="emit a SQL script (DDL, data, view SELECTs)"
    )
    sql_cmd.add_argument("problem", help="path to a JSON problem document")

    stats_cmd = sub.add_parser(
        "stats", help="summarize a problem's workload statistics"
    )
    stats_cmd.add_argument("problem", help="path to a JSON problem document")

    insert_cmd = sub.add_parser(
        "insert", help="plan the insertion of a tuple into a view"
    )
    insert_cmd.add_argument("problem", help="path to a JSON problem document")
    insert_cmd.add_argument("view", help="target view name")
    insert_cmd.add_argument(
        "values", nargs="+", help="the view tuple's values"
    )

    example_cmd = sub.add_parser(
        "example", help="emit a ready-made problem document"
    )
    example_cmd.add_argument(
        "name", choices=["fig1", "fig1-q4", "chain", "star"],
    )
    example_cmd.add_argument("--seed", type=int, default=0)
    example_cmd.add_argument("--out", default=None)

    experiments_cmd = sub.add_parser(
        "experiments", help="run E1–E12 and write EXPERIMENTS.md"
    )
    experiments_cmd.add_argument("--out", default="EXPERIMENTS.md")

    fuzz_cmd = sub.add_parser(
        "fuzz",
        help=(
            "differential fuzzing: random instances through every solver "
            "route, both verifier backends, and the exact ILP"
        ),
    )
    fuzz_cmd.add_argument("--seed", type=int, default=0)
    fuzz_cmd.add_argument("--iterations", type=int, default=100)
    fuzz_cmd.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="stop early after this much wall time",
    )
    fuzz_cmd.add_argument(
        "--corpus",
        default="tests/corpus",
        help=(
            "directory for shrunken failing cases (replayed as "
            "regression tests); 'none' disables persistence"
        ),
    )
    fuzz_cmd.add_argument(
        "--kinds",
        default=None,
        help="comma-separated case kinds (default: all)",
    )
    fuzz_cmd.add_argument(
        "--no-shrink",
        action="store_true",
        help="persist failing cases without shrinking them",
    )
    fuzz_cmd.add_argument(
        "--router",
        default=None,
        choices=["static", "learned"],
        help=(
            "route planner the campaign's auto dispatches use "
            "(sets REPRO_ROUTER for the run; default: current env)"
        ),
    )

    serve_cmd = sub.add_parser(
        "serve",
        help=(
            "run the solve service: JSON lines over TCP or a unix "
            "socket, instances registered by content hash"
        ),
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=7341,
        help="TCP port (0 picks a free one; printed on startup)",
    )
    serve_cmd.add_argument(
        "--unix",
        default=None,
        metavar="PATH",
        help="serve on a unix domain socket instead of TCP",
    )
    serve_cmd.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for pooled batches (default: CPU count; "
            "0 runs everything in-process)"
        ),
    )
    serve_cmd.add_argument(
        "--pool-threshold",
        type=int,
        default=4,
        help="smallest batch worth the worker pool (default: 4)",
    )
    serve_cmd.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="per-instance queue depth before solves are rejected",
    )
    serve_cmd.add_argument(
        "--preload",
        action="append",
        default=[],
        metavar="PROBLEM",
        help="problem document(s) to register before listening",
    )
    serve_cmd.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help=(
            "durable registration journal directory: registrations are "
            "fsynced before acknowledgement and replayed on restart "
            "(default: memory-only)"
        ),
    )
    serve_cmd.add_argument(
        "--drain-seconds",
        type=float,
        default=5.0,
        help=(
            "graceful-drain budget for SIGTERM and shutdown "
            "mode=drain (default: 5)"
        ),
    )

    client_cmd = sub.add_parser(
        "client", help="talk to a running solve service"
    )
    client_cmd.add_argument(
        "action",
        choices=["ping", "stats", "health", "register", "solve",
                 "shutdown"],
    )
    client_cmd.add_argument(
        "target",
        nargs="?",
        help=(
            "problem document path (register, or solve — registers "
            "then solves its own ΔV) or instance hash (solve with "
            "--deletions)"
        ),
    )
    client_cmd.add_argument(
        "--connect",
        default="127.0.0.1:7341",
        help="server address: host:port or unix:<path>",
    )
    client_cmd.add_argument(
        "--deletions",
        default=None,
        help="ΔV as inline JSON ({view: [row, ...]}) or @file.json",
    )
    client_cmd.add_argument("--method", default=None)
    client_cmd.add_argument(
        "--deadline", type=float, default=None,
        help="per-request deadline in seconds (SolvePolicy)",
    )
    client_cmd.add_argument(
        "--retries", type=int, default=0,
        help="per-request retries for transient failures",
    )
    client_cmd.add_argument(
        "--fallback", default=None,
        help="comma-separated fallback methods",
    )
    client_cmd.add_argument(
        "--shutdown-mode",
        choices=["now", "drain"],
        default="now",
        help=(
            "shutdown action only: 'drain' finishes in-flight work "
            "under the server's drain budget first (default: now)"
        ),
    )
    client_cmd.add_argument(
        "--retry-overloaded",
        type=int,
        default=0,
        metavar="N",
        help=(
            "retry overload-class rejections up to N times, honoring "
            "the server's retry_after_ms hint with seeded jitter"
        ),
    )
    client_cmd.add_argument(
        "--backoff-seconds",
        type=float,
        default=0.05,
        help="base of the client retry backoff schedule (default: 0.05)",
    )
    client_cmd.add_argument(
        "--backoff-seed",
        type=int,
        default=None,
        help="override the derived backoff jitter seed",
    )

    return parser


def _build_policy(args: argparse.Namespace):
    """The :class:`SolvePolicy` implied by --deadline/--retries/--fallback
    (``None`` when none are set, keeping the plain dispatch path)."""
    fallback = args.fallback
    if args.deadline is None and not args.retries and not fallback:
        return None
    from repro.core.resilience import SolvePolicy, parse_fallback

    return SolvePolicy(
        deadline_seconds=args.deadline,
        retries=args.retries,
        fallback=parse_fallback(fallback),
    )


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.no_trace_store:
        import os

        from repro.core.tracestore import TRACE_ENV

        os.environ[TRACE_ENV] = "off"
    problem = load_problem(args.problem)
    policy = _build_policy(args)
    rng = None
    if policy is not None and args.seed is not None:
        from repro.core.resilience import derive_backoff_rng

        rng = derive_backoff_rng(args.method, policy, seed=args.seed)
    report = None
    if args.portfolio:
        from repro.core.portfolio import DEFAULT_PORTFOLIO, solve_portfolio

        methods = (
            [m.strip() for m in args.methods.split(",") if m.strip()]
            if args.methods
            else DEFAULT_PORTFOLIO
        )
        solution = solve_portfolio(
            problem, methods=methods, max_workers=args.jobs, policy=policy
        )
    else:
        report = solve_report(
            problem,
            method=args.method,
            policy=policy,
            rng=rng,
            router=args.router,
        )
        solution = report.propagation
    if args.json:
        doc = solution_to_dict(solution)
        if report is not None and report.attempts:
            doc["attempts"] = [
                record.as_dict() for record in report.attempts
            ]
        if args.trace and report is not None:
            doc["route"] = report.route
            doc["profile"] = report.profile.as_dict()
            doc["trace"] = [stage.as_dict() for stage in report.trace]
        json.dump(doc, sys.stdout, indent=2)
        print()
    elif args.explain:
        from repro.core.explain import explain_solution

        print(explain_solution(solution))
    else:
        if args.trace and report is not None:
            print(report.summary())
            print("  profile:")
            for name, value in report.profile.as_dict().items():
                print(f"    {name}: {value}")
        else:
            print(solution.summary())
        for fact in sorted(solution.deleted_facts):
            print(f"  delete {fact!r}")
        if solution.collateral:
            print("  collateral:")
            for vt in sorted(solution.collateral):
                print(f"    - {vt!r}")
    return 0 if solution.is_feasible() else 1


def _cmd_classify(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    # Classify the problem itself (not its bare query list): the flags
    # then come off the session's StructureProfile — the same single
    # scan auto dispatch uses.
    flags = classification_flags(problem)
    print(f"{problem!r}")
    print("structure:")
    for name, value in sorted(flags.items()):
        print(f"  {name}: {value}")
    print("complexity landscape rows that apply:")
    for row in verdict(problem):
        print(f"  [{row.table}] {row.complexity} — {row.query_class} "
              f"({row.citation})")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.core.registry import route_plan

    problem = load_problem(args.problem)
    plan = route_plan(problem, router=args.router)
    print(plan.explain())
    return 0


def _cmd_repairs(args: argparse.Namespace) -> int:
    from repro.apps.debugging import top_k_repairs

    problem = load_problem(args.problem)
    deletions = {
        name: sorted(problem.deletion.on(name))
        for name in problem.views.names
        if problem.deletion.on(name)
    }
    repairs = top_k_repairs(
        problem.instance, list(problem.queries), deletions, k=args.k
    )
    for suggestion in repairs:
        print(suggestion.explain())
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.relational.render import (
        render_instance,
        render_queries,
        render_view,
    )

    problem = load_problem(args.problem)
    print(render_queries(problem.queries))
    print()
    print(render_instance(problem.instance))
    for view in problem.views:
        print()
        print(render_view(view))
    deletions = problem.deleted_view_tuples()
    if deletions:
        print("\nΔV (requested deletions):")
        for vt in deletions:
            print(f"  - {vt!r}")
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    from repro.io.sqlgen import create_table_sql, insert_sql, query_sql

    problem = load_problem(args.problem)

    def literal(value: object) -> str:
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        return repr(value)

    for relation in problem.instance.schema:
        print(create_table_sql(relation) + ";")
    for relation in problem.instance.schema:
        template = insert_sql(relation)
        for fact in sorted(problem.instance.relation(relation.name)):
            rendered = template
            for value in fact.values:
                rendered = rendered.replace("?", literal(value), 1)
            print(rendered + ";")
    for query in problem.queries:
        sql, parameters = query_sql(query)
        for value in parameters:
            sql = sql.replace("?", literal(value), 1)
        print(f"-- view {query.name}: {query!r}")
        print(sql + ";")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_table
    from repro.core.statistics import workload_statistics

    problem = load_problem(args.problem)
    stats = workload_statistics(problem)
    print(format_table(stats.as_rows(), title=repr(problem)))
    print()
    print(
        format_table(
            [
                {"view": name, "tuples": size}
                for name, size in stats.view_sizes.items()
            ],
            title="view sizes",
        )
    )
    return 0


def _cmd_insert(args: argparse.Namespace) -> int:
    from repro.apps.view_update import propagate_insertion

    problem = load_problem(args.problem)
    plan = propagate_insertion(
        problem.instance,
        list(problem.queries),
        args.view,
        tuple(args.values),
    )
    status = "feasible" if plan.feasible else "CONFLICTS"
    print(f"insert {plan.values!r} into {plan.view}: {status}")
    for fact in plan.new_facts:
        print(f"  + {fact!r}")
    for fact in plan.reused_facts:
        print(f"  = {fact!r} (already present)")
    for required, existing in plan.conflicts:
        print(f"  ! {required!r} conflicts with {existing!r}")
    if plan.side_effects:
        print("  side-effects:")
        for vt in plan.side_effects:
            print(f"    -> {vt!r}")
    return 0 if plan.feasible else 1


def _cmd_example(args: argparse.Namespace) -> int:
    import random

    from repro.workloads import (
        figure1_problem,
        figure1_problem_q4,
        random_chain_problem,
        random_star_problem,
    )

    makers = {
        "fig1": figure1_problem,
        "fig1-q4": figure1_problem_q4,
        "chain": lambda: random_chain_problem(random.Random(args.seed)),
        "star": lambda: random_star_problem(random.Random(args.seed)),
    }
    problem = makers[args.name]()
    if args.out:
        dump_problem(problem, args.out)
        print(f"wrote {args.out}")
    else:
        json.dump(problem_to_dict(problem), sys.stdout, indent=2)
        print()
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench.markdown import write_experiments_md

    print(f"wrote {write_experiments_md(args.out)}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import CASE_KINDS, run_fuzz

    if args.router:
        import os

        from repro.core.router import ROUTER_ENV

        os.environ[ROUTER_ENV] = args.router
    kinds = None
    if args.kinds:
        kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
        unknown = set(kinds) - set(CASE_KINDS)
        if unknown:
            print(
                f"unknown kinds {sorted(unknown)}; "
                f"known: {', '.join(CASE_KINDS)}",
                file=sys.stderr,
            )
            return 2
    corpus_dir = None if args.corpus == "none" else args.corpus
    stats = run_fuzz(
        seed=args.seed,
        iterations=args.iterations,
        budget_seconds=args.budget_seconds,
        kinds=kinds,
        corpus_dir=corpus_dir,
        shrink=not args.no_shrink,
        on_event=print,
    )
    print(
        f"fuzz: {stats.iterations} iterations, {stats.routes} route runs, "
        f"{len(stats.failures)} disagreement(s), "
        f"{stats.wall_seconds:.1f}s wall"
    )
    if stats.failures:
        for entry in stats.failures:
            print(f"  - [{entry['kind']}] {entry['detail']}")
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve import SolveServer

    async def run() -> int:
        server = SolveServer(
            host=args.host,
            port=args.port,
            unix_path=args.unix,
            max_workers=args.jobs,
            pool_threshold=args.pool_threshold,
            max_pending=args.max_pending,
            state_dir=args.state_dir,
            drain_seconds=args.drain_seconds,
        )
        await server.start()
        # SIGTERM means "stop taking work, finish what you hold" —
        # the graceful half of the shutdown contract.  SIGINT (^C)
        # keeps its abrupt KeyboardInterrupt path.
        loop = asyncio.get_running_loop()
        loop.add_signal_handler(
            signal.SIGTERM,
            lambda: asyncio.ensure_future(server.drain()),
        )
        try:
            for path in args.preload:
                with open(path, encoding="utf-8") as handle:
                    doc = json.load(handle)
                instance_id, cached = server.register_document(doc)
                suffix = " (cached)" if cached else ""
                print(f"preloaded {path}: instance {instance_id}{suffix}")
            if server.stats.replayed:
                print(
                    f"replayed {server.stats.replayed} instance(s) "
                    f"from {args.state_dir}"
                )
            print(f"repro serve: listening on {server.address}")
            sys.stdout.flush()
            await server.serve_until_closed()
        finally:
            loop.remove_signal_handler(signal.SIGTERM)
            await server.close()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    policy = _build_policy(args)
    policy_doc = policy.as_dict() if policy is not None else None

    def load_deletions() -> dict:
        spec = args.deletions
        if spec.startswith("@"):
            with open(spec[1:], encoding="utf-8") as handle:
                return json.load(handle)
        return json.loads(spec)

    with ServeClient.connect(
        args.connect,
        retries=args.retry_overloaded,
        backoff_seconds=args.backoff_seconds,
        backoff_seed=args.backoff_seed,
    ) as client:
        if args.action == "ping":
            print("pong" if client.ping() else "no pong")
            return 0
        if args.action == "stats":
            json.dump(client.stats(), sys.stdout, indent=2)
            print()
            return 0
        if args.action == "health":
            health = client.health()
            json.dump(health, sys.stdout, indent=2)
            print()
            return 0 if health.get("ready") else 1
        if args.action == "shutdown":
            client.shutdown(mode=args.shutdown_mode)
            print(f"server stopping (mode={args.shutdown_mode})")
            return 0
        if args.action == "register":
            if not args.target:
                print("register needs a problem document path",
                      file=sys.stderr)
                return 2
            with open(args.target, encoding="utf-8") as handle:
                doc = json.load(handle)
            info = client.register_info(doc)
            json.dump(info, sys.stdout, indent=2)
            print()
            return 0
        # solve: target is an instance hash, or a problem document that
        # is registered first and solved for its own ΔV.
        if not args.target:
            print("solve needs an instance hash or a problem path",
                  file=sys.stderr)
            return 2
        import os.path

        if os.path.exists(args.target):
            with open(args.target, encoding="utf-8") as handle:
                doc = json.load(handle)
            instance = client.register(doc)
            deletions = (
                load_deletions() if args.deletions else doc.get(
                    "deletions", {}
                )
            )
        else:
            instance = args.target
            if not args.deletions:
                print("solving by instance hash needs --deletions",
                      file=sys.stderr)
                return 2
            deletions = load_deletions()
        result = client.solve(
            instance, deletions, method=args.method, policy=policy_doc
        )
        json.dump(result, sys.stdout, indent=2)
        print()
        return 0 if result["solution"]["feasible"] else 1


_COMMANDS = {
    "solve": _cmd_solve,
    "classify": _cmd_classify,
    "route": _cmd_route,
    "repairs": _cmd_repairs,
    "render": _cmd_render,
    "sql": _cmd_sql,
    "stats": _cmd_stats,
    "insert": _cmd_insert,
    "example": _cmd_example,
    "experiments": _cmd_experiments,
    "fuzz": _cmd_fuzz,
    "serve": _cmd_serve,
    "client": _cmd_client,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
