"""The paper's LP formulations (Section IV.C, formulas (1)–(10)).

Primal (1)–(5), for key-preserving problems::

    minimize   Σ_{r ∈ R} w_r · x_r                                (1)
    s.t.       k_r · x_r − Σ_{t ∈ r} y_t  >=  0    ∀ r ∈ R        (2)
               Σ_{t ∈ r} y_t              >=  1    ∀ r ∈ ΔV       (3)
               y_t >= 0, x_r >= 0                                 (4)(5)

``x_r`` indicates accidental elimination of a preserved view tuple,
``y_t`` deletion of a source fact, ``k_r`` the witness size of ``r``.
(The paper's displayed (3) reads ``k_r·x_r − Σ y_t >= 1``; ΔV tuples
carry no ``x`` variable, so we implement the evident intent — each
deleted view tuple must lose at least one joined fact.)

The LP optimum of the relaxation lower-bounds the integer optimum, so
:func:`lp_lower_bound` serves as ground truth on instances too large for
the exact solvers.  The dual (6)–(10) is materialized by
:func:`dual_vse_lp`; tests verify weak duality and that the
``PrimeDualVSE`` trace is dual feasible.
"""

from __future__ import annotations

from repro.errors import NotKeyPreservingError
from repro.core.problem import DeletionPropagationProblem
from repro.lp.model import LinearProgram, LPSolution

__all__ = ["primal_vse_lp", "dual_vse_lp", "lp_lower_bound"]


def _check(problem: DeletionPropagationProblem) -> None:
    if not problem.is_key_preserving():
        raise NotKeyPreservingError(
            "the LP formulation requires key-preserving queries"
        )


def primal_vse_lp(problem: DeletionPropagationProblem) -> LinearProgram:
    """Build the primal LP (1)–(5).  Variables: ``("x", vt)`` and
    ``("y", fact)`` (facts restricted to the candidate set — deleting
    any other fact is never useful and only loosens the relaxation)."""
    _check(problem)
    lp = LinearProgram()
    candidates = frozenset(problem.candidate_facts())
    for fact in sorted(candidates):
        lp.add_variable(("y", fact), objective=0.0, upper=1.0)
    preserved = problem.preserved_view_tuples()
    for vt in preserved:
        lp.add_variable(("x", vt), objective=problem.weight(vt), upper=1.0)
    for vt in preserved:
        witness = problem.witness(vt) & candidates
        if not witness:
            continue
        coefficients = {("x", vt): float(len(problem.witness(vt)))}
        for fact in witness:
            coefficients[("y", fact)] = -1.0
        lp.add_constraint(coefficients, ">=", 0.0)  # (2)
    for vt in problem.deleted_view_tuples():
        witness = problem.witness(vt) & candidates
        coefficients = {("y", fact): 1.0 for fact in witness}
        lp.add_constraint(coefficients, ">=", 1.0)  # (3)
    return lp


def dual_vse_lp(problem: DeletionPropagationProblem) -> LinearProgram:
    """Build the dual LP (6)–(10).  Variables ``("v", vt)`` for every
    view tuple; maximize ``Σ_{r ∈ ΔV} v_r`` subject to

    * ``k_r · v_r <= w_r`` for preserved ``r``                    (7)
    * per fact ``t``: Σ_{ΔV ∋ t} v_r − Σ_{R ∋ t} v_s <= 0        (8)
    """
    _check(problem)
    lp = LinearProgram()
    delta = problem.deleted_view_tuples()
    preserved = problem.preserved_view_tuples()
    delta_set = frozenset(delta)
    for vt in delta:
        lp.add_variable(("v", vt), objective=1.0)
    for vt in preserved:
        lp.add_variable(("v", vt), objective=0.0)
    for vt in preserved:  # (7)
        lp.add_constraint(
            {("v", vt): float(len(problem.witness(vt)))},
            "<=",
            problem.weight(vt),
        )
    for fact in problem.candidate_facts():  # (8)
        coefficients: dict = {}
        for vt in problem.dependents(fact):
            coefficients[("v", vt)] = 1.0 if vt in delta_set else -1.0
        lp.add_constraint(coefficients, "<=", 0.0)
    return lp


def lp_lower_bound(problem: DeletionPropagationProblem) -> float:
    """Optimum of the primal relaxation — a lower bound on the minimum
    view side-effect, used by the larger ratio experiments."""
    solution: LPSolution = primal_vse_lp(problem).solve()
    return solution.objective
