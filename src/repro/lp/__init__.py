"""Linear-programming substrate: a small LP builder over scipy's HiGHS
backend and the paper's primal/dual formulations (Section IV.C)."""

from repro.lp.formulations import dual_vse_lp, lp_lower_bound, primal_vse_lp
from repro.lp.ilp import CompiledILP, compile_ilp, solve_ilp
from repro.lp.model import LinearProgram, LPSolution

__all__ = [
    "CompiledILP",
    "LPSolution",
    "LinearProgram",
    "compile_ilp",
    "dual_vse_lp",
    "lp_lower_bound",
    "primal_vse_lp",
    "solve_ilp",
]
