"""Arena-compiled exact ILP — the first-class 0/1 route.

The previous ILP backend (``repro.core.exact``) assembled dense
constraint rows fact-by-fact in Python dicts, biased the objective with
a fixed ``1e-9`` per-deletion epsilon, checked the ambient deadline only
once, and raised on every ``success=False`` result even when HiGHS held
a feasible incumbent.  This module replaces all of it with a compiler
straight over the :class:`~repro.core.arena.CompiledProblem` CSR slabs:

* **Constraint blocks as sparse matrices.**  The vt → witness CSR slab
  *is* the incidence matrix ``W`` (one ``scipy.sparse.csr_matrix``
  wrapping the arena buffers, zero copies, ΔV-independent and shared
  across ``with_deletions`` siblings through the session's artifact
  holder).  Per ΔV binding the compiler slices ``W`` down to the
  candidate columns and emits three vectorized blocks — collateral
  linking ``x_r − y_t ≥ 0``, standard covering ``Σ_{t∈wit(b)} y_t ≥ 1``,
  balanced coverage ``c_b − Σ y_t ≤ 0`` — with no per-fact Python loop.
* **Exact lexicographic tie-break.**  Instead of the epsilon, the solve
  is lexicographic in (primary objective, number of deletions): one
  integer-scaled solve ``min M·primary + Σy`` with ``M = n_y + 1`` when
  the arena certifies :attr:`~repro.core.arena.CompiledProblem.exact_costs`
  and the scaled magnitudes stay in float64's exact-integer range,
  otherwise a two-stage solve (minimize primary, pin it, minimize
  ``Σy``).  Optimality among weights is never perturbed.
* **Deadline-respecting incumbents.**  The ambient
  :class:`~repro.core.resilience.Deadline` maps onto HiGHS
  ``time_limit``; a solve stopped at the limit extracts and verifies
  the solver's own feasible incumbent (``result.x`` guarded against
  ``None``) and raises :class:`~repro.errors.DeadlineExceededError`
  *carrying* the best incumbent, so a policy-governed request degrades
  to route ``degraded:exact-ilp`` instead of failing.
* **Warm starts.**  ``scipy``'s ``milp`` takes no starting point, so
  the greedy + local-search incumbent enters as an objective cutoff row
  ``primary(v) ≤ primary(incumbent)`` — pruning the branch & bound
  exactly like a warm-started upper bound — and doubles as the
  degradation answer when the deadline fires first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    ReductionError,
    ReproError,
    SolverError,
)
from repro.core.resilience import active_deadline
from repro.core.solution import Propagation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from scipy import sparse

    from repro.core.arena import CompiledProblem
    from repro.core.problem import DeletionPropagationProblem
    from repro.core.session import SolveSession

__all__ = ["CompiledILP", "compile_ilp", "solve_ilp", "witness_incidence"]

#: Relative slack on primary-objective cutoff rows (the warm-start
#: bound and the stage-2 lexicographic pin) so float64 round-off in the
#: solver never cuts off the true optimum.
_CUTOFF_SLACK = 1e-9

#: Ceiling for the integer-scaled single solve: scaled costs must stay
#: where float64 integer arithmetic is exact (2**52 keeps a factor-2
#: margin below the 2**53 mantissa bound).
_EXACT_LIMIT = 2.0**52

#: ``scipy.optimize.milp`` status code for "iteration or time limit
#: reached" — the one non-success status that may still carry a
#: feasible incumbent in ``result.x``.
_MILP_STATUS_LIMIT = 1


@dataclass(frozen=True)
class CompiledILP:
    """One ΔV binding's 0/1 program, compiled from the arena slabs.

    Variable layout (all binary): ``y_t`` per candidate fact
    (``candidates``, ascending fact IDs — delete the fact), ``x_r`` per
    at-risk preserved view tuple (``at_risk``, ascending vt IDs —
    collateral indicator), and for balanced problems ``c_b`` per ΔV
    tuple (coverage indicator).  ``cost`` is the *primary* objective:
    zero on ``y``, the vt weight on ``x``, ``−delta_penalty`` on ``c``
    (so for balanced problems the optimum equals the balanced cost
    minus the constant ``penalty·‖ΔV‖`` offset).  ``matrix`` stacks the
    linking block and the covering/coverage block with elementwise
    bounds ``lower ≤ matrix·v ≤ upper``.
    """

    balanced: bool
    candidates: np.ndarray  #: candidate fact IDs (the ``y`` columns)
    at_risk: np.ndarray  #: at-risk preserved vt IDs (the ``x`` columns)
    cost: np.ndarray  #: primary objective over all variables
    matrix: "sparse.csr_matrix"
    lower: np.ndarray
    upper: np.ndarray

    @property
    def num_y(self) -> int:
        return int(self.candidates.size)

    @property
    def num_x(self) -> int:
        return int(self.at_risk.size)

    @property
    def num_c(self) -> int:
        return int(self.cost.size) - self.num_y - self.num_x

    @property
    def num_vars(self) -> int:
        return int(self.cost.size)


def witness_incidence(session: "SolveSession") -> "sparse.csr_matrix":
    """The full vt × fact witness incidence matrix as a zero-copy
    ``csr_matrix`` view over the arena's CSR slabs.

    ΔV-independent, so it is built once per compiled instance and
    shared by reference across every ``with_deletions`` sibling via the
    session's artifact holder — the incremental-re-solve half of the
    ILP route: a rebind only re-slices this matrix, never rebuilds it.
    """
    shared = session._shared
    matrix = shared.ilp_incidence
    if matrix is None:
        from scipy import sparse

        arena = session.arena
        matrix = sparse.csr_matrix(
            (
                np.ones(arena.wit_indices.size, dtype=np.float64),
                arena.wit_indices,
                arena.wit_offsets,
            ),
            shape=(arena.num_view_tuples, arena.num_facts),
        )
        shared.ilp_incidence = matrix
    return matrix


def compile_ilp(session: "SolveSession") -> CompiledILP:
    """Compile the session's ΔV binding into a :class:`CompiledILP`.

    Pure vectorized sparse assembly: column-slice the shared incidence
    matrix down to the candidate facts, take its ΔV rows as the
    covering (or coverage) block, and expand the at-risk rows' nonzero
    pattern into one linking row per (view tuple, witness fact) pair.
    Raises :class:`~repro.errors.ReductionError` when a standard ΔV
    tuple's covering row would be vacuous (its witness contains no
    candidate fact — an inconsistent reduction, not a solver failure).
    """
    from scipy import sparse

    arena = session.arena
    candidates = arena.candidate_ids_np
    ny = int(candidates.size)
    witness = witness_incidence(session)[:, candidates].tocsr()

    delta_ids = arena.delta_ids_np
    nd = int(delta_ids.size)
    delta_rows = witness[delta_ids]
    cover_sizes = np.diff(delta_rows.indptr)
    if not arena.balanced and nd and int(cover_sizes.min()) == 0:
        vid = int(delta_ids[int(np.argmin(cover_sizes))])
        raise ReductionError(
            f"ΔV tuple {arena.vt_of(vid)!r} has a witness with no "
            "candidate fact; its covering constraint would be vacuous"
        )

    at_risk = np.flatnonzero(
        ~arena.delta_mask & (np.diff(witness.indptr) > 0)
    )
    nx = int(at_risk.size)
    nc = nd if arena.balanced else 0
    num_vars = ny + nx + nc

    # Linking block: one row per nonzero of the at-risk incidence —
    # x_r − y_t ≥ 0 forces the collateral indicator up whenever any
    # witness fact of r is deleted.
    link = witness[at_risk].tocoo()
    slots = int(link.nnz)
    linking = sparse.csr_matrix(
        (
            np.concatenate([np.ones(slots), -np.ones(slots)]),
            (
                np.tile(np.arange(slots), 2),
                np.concatenate(
                    [ny + np.asarray(link.row), np.asarray(link.col)]
                ),
            ),
        ),
        shape=(slots, num_vars),
    )
    blocks = [linking]
    lower = [np.zeros(slots)]
    upper = [np.full(slots, np.inf)]

    if arena.balanced:
        # Coverage block: c_b − Σ_{t∈wit(b)} y_t ≤ 0 — the coverage
        # indicator can only be claimed when the witness is hit.
        cover = delta_rows.tocoo()
        coverage = sparse.csr_matrix(
            (
                np.concatenate([np.ones(nd), -np.ones(int(cover.nnz))]),
                (
                    np.concatenate([np.arange(nd), np.asarray(cover.row)]),
                    np.concatenate(
                        [ny + nx + np.arange(nd), np.asarray(cover.col)]
                    ),
                ),
            ),
            shape=(nd, num_vars),
        )
        blocks.append(coverage)
        lower.append(np.full(nd, -np.inf))
        upper.append(np.zeros(nd))
    else:
        # Covering block: every ΔV witness must be hit.
        covering = sparse.hstack(
            [delta_rows, sparse.csr_matrix((nd, num_vars - ny))],
            format="csr",
        )
        blocks.append(covering)
        lower.append(np.ones(nd))
        upper.append(np.full(nd, np.inf))

    cost = np.zeros(num_vars)
    cost[ny : ny + nx] = arena.weights[at_risk]
    if arena.balanced:
        cost[ny + nx :] = -arena.delta_penalty

    return CompiledILP(
        balanced=bool(arena.balanced),
        candidates=candidates,
        at_risk=at_risk,
        cost=cost,
        matrix=sparse.vstack(blocks, format="csr"),
        lower=np.concatenate(lower),
        upper=np.concatenate(upper),
    )


def _check_candidates(
    problem: "DeletionPropagationProblem",
    arena: "CompiledProblem",
    model: CompiledILP,
) -> None:
    """Cross-check the problem's declared candidate set against the
    arena's ΔV-witness scan (the ``y`` columns).

    A mismatch means some ΔV witness contains a fact outside
    ``candidate_facts()`` (or vice versa) — the inconsistency that used
    to surface as a raw ``KeyError`` out of the dense row assembly.
    Raise a typed :class:`~repro.errors.ReductionError` instead.
    """
    declared = problem.candidate_facts()
    fact_ids = arena.fact_ids
    try:
        declared_ids = sorted(fact_ids[fact] for fact in declared)
    except KeyError as exc:
        raise ReductionError(
            f"candidate fact {exc.args[0]!r} is not in the compiled "
            "arena's fact table"
        ) from None
    if declared_ids != model.candidates.tolist():
        raise ReductionError(
            "candidate_facts() disagrees with the arena's ΔV-witness "
            f"scan ({len(declared_ids)} declared vs {model.num_y} "
            "compiled): some ΔV witness references a fact outside the "
            "candidate set, so the covering rows would be unsound"
        )


def _warm_incumbent(
    problem: "DeletionPropagationProblem",
) -> Propagation | None:
    """The greedy + local-search incumbent used as the warm-start
    cutoff and the degradation answer, or ``None`` when no (feasible)
    incumbent can be produced.

    Deadline expiry *inside* the warm start is swallowed — the best
    solution reached so far is still a perfectly good incumbent; the
    caller re-checks the deadline before committing to the solve.
    """
    from repro.core.greedy import solve_greedy_min_damage
    from repro.core.local_search import improve
    from repro.core.problem import BalancedDeletionPropagationProblem

    balanced = isinstance(problem, BalancedDeletionPropagationProblem)
    try:
        if balanced:
            start = Propagation(
                problem, (), method="exact-ilp-incumbent", validate=False
            )
        else:
            start = solve_greedy_min_damage(problem)
    except DeadlineExceededError as exc:
        start = exc.incumbent
    except ReproError:
        start = None
    if start is None or (not balanced and not start.is_feasible()):
        if balanced:
            return None
        # Last resort: deleting every candidate fact hits every ΔV
        # witness (candidates are exactly the ΔV-witness facts), so
        # this is always feasible — costly, but a valid incumbent.
        start = Propagation(
            problem,
            problem.candidate_facts(),
            method="exact-ilp-incumbent",
            validate=False,
        )
    try:
        refined = improve(start)
    except DeadlineExceededError as exc:
        refined = exc.incumbent if exc.incumbent is not None else start
    except (ReproError, ValueError):
        refined = start
    if not balanced and not refined.is_feasible():
        refined = start
    return Propagation(
        problem,
        refined.deleted_facts,
        method="exact-ilp-incumbent",
        validate=False,
    )


def _scaled_multiplier(
    arena: "CompiledProblem", model: CompiledILP
) -> float | None:
    """The lexicographic scaling factor ``M = n_y + 1``, or ``None``
    when the single-solve encoding is not exact.

    With integer costs (``arena.exact_costs``) every primary objective
    value is an integer, so minimizing ``M·primary + Σy`` is exactly
    lexicographic in (primary, deletions) as long as the scaled
    magnitudes stay in float64's exact-integer range.
    """
    if not arena.exact_costs:
        return None
    multiplier = float(model.num_y + 1)
    reach = float(np.abs(model.cost).sum()) + 1.0
    if multiplier * reach + model.num_y >= _EXACT_LIMIT:
        return None
    return multiplier


def solve_ilp(
    problem: "DeletionPropagationProblem",
    warm_start: bool = True,
    mip_rel_gap: float | None = None,
) -> Propagation:
    """Exact 0/1 ILP over the compiled arena (key-preserving problems,
    standard and balanced).

    Lexicographically optimal in (primary objective, number of
    deletions) — see the module docstring for the formulation, the
    warm-start cutoff, and the deadline/incumbent contract.
    ``mip_rel_gap`` passes a relative optimality-gap tolerance through
    to HiGHS for callers that trade exactness for speed explicitly.
    """
    from repro.core.session import SolveSession

    session = SolveSession.of(problem)
    if not session.profile.key_preserving:
        raise SolverError("ILP backend requires key-preserving queries")
    try:
        from scipy import sparse
        from scipy.optimize import Bounds, LinearConstraint, milp
    except ImportError as exc:  # pragma: no cover - scipy is a dependency
        raise SolverError("scipy.optimize.milp unavailable") from exc

    deadline = active_deadline()
    if deadline is not None:
        # ``milp`` cannot be interrupted cooperatively; refuse to start
        # a solve whose budget is already spent.
        deadline.check(what="exact ILP")
    if not problem.candidate_facts():
        return Propagation(problem, (), method="exact-ilp")

    arena = session.arena
    model = session.ilp_model()
    _check_candidates(problem, arena, model)

    incumbent = _warm_incumbent(problem) if warm_start else None
    if deadline is not None:
        # The warm start may have consumed the remaining budget; a
        # policy-governed caller degrades to the incumbent here.
        deadline.check(incumbent=incumbent, what="exact ILP")

    def primary_of(prop: Propagation) -> float:
        if model.balanced:
            # The c_b reward makes the ILP optimum the balanced cost
            # minus the constant penalty·‖ΔV‖ offset.
            return (
                prop.balanced_cost()
                - arena.delta_penalty * arena.num_delta
            )
        return prop.side_effect()

    def cutoff(value: float) -> float:
        return value + _CUTOFF_SLACK * (1.0 + abs(value))

    def extract(result, method: str) -> Propagation | None:
        x = getattr(result, "x", None)
        if x is None:
            return None
        chosen = model.candidates[x[: model.num_y] > 0.5]
        prop = Propagation(
            problem,
            arena.facts_of(chosen.tolist()),
            method=method,
            validate=False,
        )
        if not model.balanced and not prop.is_feasible():
            return None
        return prop

    def better(
        a: Propagation | None, b: Propagation | None
    ) -> Propagation | None:
        if a is None:
            return b
        if b is None:
            return a
        return a if a.objective() <= b.objective() else b

    primary_row = sparse.csr_matrix(model.cost)
    extra_rows: list[tuple] = []
    if incumbent is not None:
        # Warm start as an objective cutoff: primary(v) can never beat
        # the incumbent from above, so the bound only prunes.
        extra_rows.append(
            (primary_row, -np.inf, cutoff(primary_of(incumbent)))
        )

    integrality = np.ones(model.num_vars)
    bounds = Bounds(0, 1)

    def run(objective: np.ndarray, rows: list[tuple]):
        matrix, lower, upper = model.matrix, model.lower, model.upper
        if rows:
            matrix = sparse.vstack(
                [matrix, *(row for row, _, _ in rows)], format="csr"
            )
            lower = np.concatenate(
                [lower, [lo for _, lo, _ in rows]]
            )
            upper = np.concatenate(
                [upper, [hi for _, _, hi in rows]]
            )
        options: dict[str, float] = {}
        if mip_rel_gap is not None:
            options["mip_rel_gap"] = float(mip_rel_gap)
        if deadline is not None:
            remaining = deadline.remaining()
            if remaining <= 0:
                raise DeadlineExceededError(
                    "exact ILP deadline exceeded", incumbent=incumbent
                )
            options["time_limit"] = remaining
        return milp(
            c=objective,
            constraints=LinearConstraint(matrix, lower, upper),
            integrality=integrality,
            bounds=bounds,
            options=options,
        )

    def finish(result) -> Propagation:
        if result.success:
            prop = extract(result, "exact-ilp")
            if prop is None:
                raise SolverError(
                    "ILP reported success without a usable solution "
                    "vector"
                )
            return prop
        if result.status == _MILP_STATUS_LIMIT:
            # Time/iteration limit: result.x may still hold a feasible
            # incumbent (or be None) — degrade, never discard.
            best = better(
                extract(result, "exact-ilp-incumbent"), incumbent
            )
            raise DeadlineExceededError(
                "exact ILP stopped at its time limit", incumbent=best
            )
        raise SolverError(f"ILP solver failed: {result.message}")

    count = np.zeros(model.num_vars)
    count[: model.num_y] = 1.0

    multiplier = _scaled_multiplier(arena, model)
    if multiplier is not None:
        # Single-solve lexicographic encoding with exact integer costs.
        return finish(run(multiplier * model.cost + count, extra_rows))

    # Two-stage lexicographic solve: optimize the primary objective,
    # pin it, then minimize the number of deletions among its optima.
    stage_one_result = run(model.cost, extra_rows)
    stage_one = finish(stage_one_result)
    pin = (primary_row, -np.inf, cutoff(float(stage_one_result.fun)))
    if deadline is not None and deadline.expired:
        # The primary optimum is in hand; the tie-break is best-effort.
        return stage_one
    try:
        stage_two_result = run(count, [*extra_rows, pin])
    except DeadlineExceededError:
        return stage_one
    if (
        stage_two_result.success
        or stage_two_result.status == _MILP_STATUS_LIMIT
    ):
        refined = extract(stage_two_result, "exact-ilp")
        if refined is not None:
            return refined
    # The tie-break is a preference, not a requirement: any stage-2
    # hiccup (limit without an incumbent, numerical infeasibility of
    # the pin) keeps the primary-optimal stage-1 answer.
    return stage_one
