"""A small linear-program builder over ``scipy.optimize.linprog``.

Just enough structure for the paper's LP formulations: named variables
with bounds and objective coefficients, linear constraints with
``<=``/``>=``/``==`` senses, minimization or maximization, and a typed
solution object.  Integrality is handled by the ILP backend in
:mod:`repro.lp.ilp`; this module is for *relaxations* (lower bounds
in the ratio experiments) and dual feasibility checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np
from scipy.optimize import linprog

from repro.errors import SolverError

__all__ = ["LinearProgram", "LPSolution"]

VarName = Hashable


@dataclass(frozen=True)
class LPSolution:
    """Solved LP: objective value and variable values.

    Every constructed instance is optimal by construction — ``solve``
    raises :class:`~repro.errors.SolverError` on infeasible/unbounded
    programs instead of returning a flagged solution, so the former
    always-``True`` ``optimal`` field has been removed.
    """

    objective: float
    values: dict[VarName, float]
    message: str = ""

    def value(self, name: VarName) -> float:
        return self.values[name]


class LinearProgram:
    """An LP under construction.  Variables default to ``[0, +inf)``."""

    def __init__(self) -> None:
        self._names: list[VarName] = []
        self._index: dict[VarName, int] = {}
        self._objective: list[float] = []
        self._bounds: list[tuple[float, float | None]] = []
        self._rows: list[dict[int, float]] = []
        self._senses: list[str] = []
        self._rhs: list[float] = []

    def add_variable(
        self,
        name: VarName,
        objective: float = 0.0,
        lower: float = 0.0,
        upper: float | None = None,
    ) -> None:
        if name in self._index:
            raise SolverError(f"duplicate LP variable {name!r}")
        self._index[name] = len(self._names)
        self._names.append(name)
        self._objective.append(float(objective))
        self._bounds.append((lower, upper))

    def add_constraint(
        self, coefficients: Mapping[VarName, float], sense: str, rhs: float
    ) -> None:
        """Add ``Σ c_i·x_i  <sense>  rhs`` with sense in {<=, >=, ==}."""
        if sense not in ("<=", ">=", "=="):
            raise SolverError(f"unknown constraint sense {sense!r}")
        row: dict[int, float] = {}
        for name, coefficient in coefficients.items():
            if name not in self._index:
                raise SolverError(f"unknown LP variable {name!r}")
            if coefficient:
                row[self._index[name]] = float(coefficient)
        self._rows.append(row)
        self._senses.append(sense)
        self._rhs.append(float(rhs))

    @property
    def num_variables(self) -> int:
        return len(self._names)

    @property
    def num_constraints(self) -> int:
        return len(self._rows)

    def solve(self, maximize: bool = False) -> LPSolution:
        """Solve with HiGHS; raises :class:`SolverError` on infeasible or
        unbounded programs."""
        n = len(self._names)
        if n == 0:
            return LPSolution(0.0, {})
        c = np.array(self._objective)
        if maximize:
            c = -c
        a_ub_rows, b_ub = [], []
        a_eq_rows, b_eq = [], []
        for row, sense, rhs in zip(self._rows, self._senses, self._rhs):
            dense = np.zeros(n)
            for j, coefficient in row.items():
                dense[j] = coefficient
            if sense == "<=":
                a_ub_rows.append(dense)
                b_ub.append(rhs)
            elif sense == ">=":
                a_ub_rows.append(-dense)
                b_ub.append(-rhs)
            else:
                a_eq_rows.append(dense)
                b_eq.append(rhs)
        result = linprog(
            c,
            A_ub=np.array(a_ub_rows) if a_ub_rows else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq_rows) if a_eq_rows else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=self._bounds,
            method="highs",
        )
        if not result.success:
            raise SolverError(f"LP solve failed: {result.message}")
        objective = float(result.fun)
        if maximize:
            objective = -objective
        values = {
            name: float(result.x[i]) for name, i in self._index.items()
        }
        return LPSolution(objective, values, result.message)
