"""Theorem 1's hardness reduction: Red-Blue Set Cover → view side-effect.

Construction (paper Section III, Fig. 2), implemented faithfully with
one engineering addition.  Given an RBSC instance ``(R, B, C)``:

* **Schema** — a single relation ``T`` whose columns are one *set id*
  column (the key) followed by one column per element of ``R ∪ B``.
  The id column realizes the paper's "fill the rest cells by distinct
  values": it pins each atom of a view query to exactly one row.
* **Instance** — one row per set ``C``: the id, then for each element
  ``e`` the marker ``e`` when ``e ∈ C`` and a globally unique junk value
  otherwise.  The table is a bijection with ``C``.
* **Views** — one project-free (self-join) conjunctive query per
  element ``e``: the join of the rows of all sets containing ``e``
  (constants select the rows; every non-constant position is a fresh
  head variable, so the query is project-free and key preserving).
  Each view has exactly one tuple, the "join path" of Fig. 2.
* **View deletion** — ``ΔV`` consists of the (single) view tuples of
  the blue-element views.

Cost preservation: deleting the row of set ``C`` eliminates exactly the
views of the elements of ``C``; hence a deletion set eliminating all
blue views while killing ``k`` red views corresponds to a selection
covering all blues with ``k`` covered reds, and vice versa.  The
reduction is linear, transferring RBSC's
``O(2^(log^{1-δ}|C|))`` inapproximability to view side-effect — the
benches verify the cost equality ``OPT_RBSC = OPT_VSE`` exactly.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import ReductionError
from repro.relational.cq import Atom, ConjunctiveQuery, Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import Key, RelationSchema, Schema
from repro.relational.tuples import Fact
from repro.core.problem import DeletionPropagationProblem
from repro.core.session import SolveSession
from repro.core.solution import Propagation
from repro.setcover.redblue import RedBlueSetCover

__all__ = ["Theorem1Reduction", "rbsc_to_vse"]

Element = Hashable


class Theorem1Reduction:
    """The materialized reduction with its decoding maps."""

    def __init__(
        self,
        rbsc: RedBlueSetCover,
        problem: DeletionPropagationProblem,
        row_of_set: dict[str, Fact],
        view_of_element: dict[Element, str],
    ):
        self.rbsc = rbsc
        self.problem = problem
        self.row_of_set = row_of_set
        self.set_of_row = {fact: name for name, fact in row_of_set.items()}
        self.view_of_element = view_of_element

    @property
    def session(self) -> SolveSession:
        """The compile-once solve context of the constructed instance —
        any solver run on :attr:`problem` shares its profile and arena."""
        return SolveSession.of(self.problem)

    # -- solution transfer ------------------------------------------------

    def selection_to_propagation(self, selection: list[str]) -> Propagation:
        """RBSC selection → source deletions (delete the selected rows)."""
        facts = [self.row_of_set[name] for name in selection]
        return Propagation(self.problem, facts, method="theorem1-transfer")

    def propagation_to_selection(self, propagation: Propagation) -> list[str]:
        """Source deletions → RBSC selection (select the deleted rows)."""
        out = []
        for fact in sorted(propagation.deleted_facts):
            name = self.set_of_row.get(fact)
            if name is None:
                raise ReductionError(f"deleted fact {fact!r} is not a set row")
            out.append(name)
        return out

    def side_effect_equals_cost(self, selection: list[str]) -> bool:
        """Check the invariant behind the theorem: view side-effect of
        the transferred solution equals the RBSC cost of the selection
        (restricted to elements that occur in at least one set)."""
        propagation = self.selection_to_propagation(selection)
        return propagation.side_effect() == self.rbsc.cost(selection)


def _column_layout(rbsc: RedBlueSetCover) -> list[Element]:
    return sorted(rbsc.reds, key=repr) + sorted(rbsc.blues, key=repr)


def rbsc_to_vse(rbsc: RedBlueSetCover) -> Theorem1Reduction:
    """Build the Theorem 1 instance for an RBSC instance.

    Raises :class:`ReductionError` when some blue element occurs in no
    set (the RBSC instance would be infeasible and the corresponding
    view empty).
    """
    elements = _column_layout(rbsc)
    columns = ["set_id"] + [f"e{i}" for i in range(len(elements))]
    schema = Schema([RelationSchema("T", columns, Key((0,)))])

    instance = Instance(schema)
    row_of_set: dict[str, Fact] = {}
    for name in sorted(rbsc.sets):
        members = rbsc.sets[name]
        values: list[object] = [name]
        for i, element in enumerate(elements):
            if element in members:
                values.append(("elem", element))
            else:
                values.append(("junk", name, i))
        fact = Fact("T", values)
        instance.add(fact)
        row_of_set[name] = fact

    containing: dict[Element, list[str]] = {e: [] for e in elements}
    for name in sorted(rbsc.sets):
        for element in rbsc.sets[name]:
            containing[element].append(name)
    for blue in rbsc.blues:
        if not containing[blue]:
            raise ReductionError(
                f"blue element {blue!r} occurs in no set; RBSC infeasible"
            )

    queries: list[ConjunctiveQuery] = []
    view_of_element: dict[Element, str] = {}
    deletions: dict[str, list[tuple]] = {}
    counter = 0
    for element in elements:
        sets_with_element = containing[element]
        if not sets_with_element:
            continue  # element never covered; its view plays no role
        query_name = f"V{counter}"
        counter += 1
        view_of_element[element] = query_name
        head: list[Variable] = []
        body: list[Atom] = []
        for j, set_name in enumerate(sets_with_element):
            terms: list = [Constant(set_name)]
            for i in range(len(elements)):
                var = Variable(f"x_{j}_{i}")
                terms.append(var)
                head.append(var)
            body.append(Atom("T", terms))
        queries.append(ConjunctiveQuery(query_name, head, body, schema))
        if element in rbsc.blues:
            # The single view tuple: the join of the selected rows.
            values: list[object] = []
            for set_name in sets_with_element:
                values.extend(row_of_set[set_name].values[1:])
            deletions[query_name] = [tuple(values)]

    problem = DeletionPropagationProblem(instance, queries, deletions)
    return Theorem1Reduction(rbsc, problem, row_of_set, view_of_element)
