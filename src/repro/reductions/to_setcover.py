"""Algorithmic reductions VSE → RBSC and balanced VSE → PN-PSC.

These are the *upper bound* direction of the paper (Claim 1, Lemma 1):

* red / negative elements  <- view tuples to preserve,
* blue / positive elements <- view tuples of ΔV,
* one covering set per candidate fact ``t``, containing exactly the view
  tuples whose witness contains ``t`` (unique witnesses thanks to key
  preservation, so "deleting t" and "covering t's set" eliminate the
  same view tuples).

Weights of preserved view tuples transfer unchanged.  The reduction
preserves feasibility and cost in both directions, so any RBSC / PN-PSC
approximation ratio transfers to deletion propagation — this is checked
empirically by the E4/E9 benches and by the property tests.

Both reductions accept an optional pre-compiled witness arena
(:class:`~repro.core.arena.CompiledProblem`).  With ``compiled`` the
covering elements are dense integer view-tuple IDs instead of hashed
:class:`ViewTuple` objects, so the downstream RBSC/PN-PSC solvers stop
re-hashing structured tuples on every set operation; the decoding map
(set name → :class:`Fact`) is unchanged either way, which keeps the
object-level solver surface identical.  The covering *sets* coincide
under the arena's interning (ID order == object order), so solver
selections are preserved.
"""

from __future__ import annotations

from repro.errors import NotKeyPreservingError
from repro.relational.tuples import Fact
from repro.core.arena import CompiledProblem
from repro.core.problem import (
    BalancedDeletionPropagationProblem,
    DeletionPropagationProblem,
)
from repro.core.session import SolveSession
from repro.setcover.posneg import PosNegPartialSetCover
from repro.setcover.redblue import RedBlueSetCover

__all__ = [
    "SetCoverReduction",
    "problem_to_rbsc",
    "problem_to_posneg",
]


class SetCoverReduction:
    """Holds a covering instance plus the decoding map set name → fact."""

    def __init__(
        self,
        covering,
        fact_of_set: dict[str, Fact],
    ):
        self.covering = covering
        self._fact_of_set = fact_of_set

    def decode(self, selection: list[str]) -> list[Fact]:
        """Map a selection of covering sets back to source deletions."""
        return [self._fact_of_set[name] for name in selection]

    @property
    def set_names(self) -> list[str]:
        return list(self._fact_of_set)


def _covering_sets(
    problem: DeletionPropagationProblem,
    compiled: CompiledProblem | None = None,
) -> tuple[dict[str, frozenset], dict[str, Fact]]:
    if compiled is not None:
        # Arena path: one covering set per candidate fact, with integer
        # view-tuple IDs as elements (dep_set_of is exactly the
        # dependents frozenset, pre-interned).
        sets: dict[str, frozenset] = {}
        fact_of_set: dict[str, Fact] = {}
        facts = compiled.facts
        dep_set_of = compiled.dep_set_of
        for fid in compiled.candidate_ids:
            fact = facts[fid]
            name = f"del:{fact!r}"
            sets[name] = dep_set_of[fid]
            fact_of_set[name] = fact
        return sets, fact_of_set
    if not SolveSession.of(problem).profile.key_preserving:
        raise NotKeyPreservingError(
            "the set-cover reduction requires key-preserving queries "
            "(unique witnesses)"
        )
    sets = {}
    fact_of_set = {}
    for fact in problem.candidate_facts():
        name = f"del:{fact!r}"
        sets[name] = problem.dependents(fact)
        fact_of_set[name] = fact
    return sets, fact_of_set


def problem_to_rbsc(
    problem: DeletionPropagationProblem,
    compiled: CompiledProblem | None = None,
) -> SetCoverReduction:
    """Claim 1's reduction: view side-effect → Red-Blue Set Cover.

    Pass ``compiled`` to build the covering instance over integer
    view-tuple IDs (same sets, no object hashing downstream)."""
    sets, fact_of_set = _covering_sets(problem, compiled)
    if compiled is not None:
        # Red/blue slices come straight off the arena's flat int-ID
        # arrays (preserved_ids / delta_ids) — no per-call rescan.
        weights = compiled.weights
        preserved_ids = compiled.preserved_ids
        instance = RedBlueSetCover(
            reds=preserved_ids,
            blues=compiled.delta_ids,
            sets=sets,
            red_weights={vid: weights[vid] for vid in preserved_ids},
        )
    else:
        preserved = problem.preserved_view_tuples()
        instance = RedBlueSetCover(
            reds=preserved,
            blues=problem.deleted_view_tuples(),
            sets=sets,
            red_weights={vt: problem.weight(vt) for vt in preserved},
        )
    return SetCoverReduction(instance, fact_of_set)


def problem_to_posneg(
    problem: BalancedDeletionPropagationProblem,
    compiled: CompiledProblem | None = None,
) -> SetCoverReduction:
    """Lemma 1's reduction: balanced deletion propagation → PN-PSC.

    Pass ``compiled`` to build the covering instance over integer
    view-tuple IDs (same sets, no object hashing downstream)."""
    sets, fact_of_set = _covering_sets(problem, compiled)
    if compiled is not None:
        # Positive/negative slices come straight off the arena's flat
        # int-ID arrays (delta_ids / preserved_ids) — no per-call rescan.
        weights = compiled.weights
        preserved_ids = compiled.preserved_ids
        instance = PosNegPartialSetCover(
            positives=compiled.delta_ids,
            negatives=preserved_ids,
            sets=sets,
            negative_weights={vid: weights[vid] for vid in preserved_ids},
            positive_penalty=compiled.delta_penalty,
        )
    else:
        preserved = problem.preserved_view_tuples()
        instance = PosNegPartialSetCover(
            positives=problem.deleted_view_tuples(),
            negatives=preserved,
            sets=sets,
            negative_weights={vt: problem.weight(vt) for vt in preserved},
            positive_penalty=problem.delta_penalty,
        )
    return SetCoverReduction(instance, fact_of_set)
