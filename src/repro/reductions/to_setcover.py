"""Algorithmic reductions VSE → RBSC and balanced VSE → PN-PSC.

These are the *upper bound* direction of the paper (Claim 1, Lemma 1):

* red / negative elements  <- view tuples to preserve,
* blue / positive elements <- view tuples of ΔV,
* one covering set per candidate fact ``t``, containing exactly the view
  tuples whose witness contains ``t`` (unique witnesses thanks to key
  preservation, so "deleting t" and "covering t's set" eliminate the
  same view tuples).

Weights of preserved view tuples transfer unchanged.  The reduction
preserves feasibility and cost in both directions, so any RBSC / PN-PSC
approximation ratio transfers to deletion propagation — this is checked
empirically by the E4/E9 benches and by the property tests.
"""

from __future__ import annotations

from repro.errors import NotKeyPreservingError
from repro.relational.tuples import Fact
from repro.relational.views import ViewTuple
from repro.core.problem import (
    BalancedDeletionPropagationProblem,
    DeletionPropagationProblem,
)
from repro.setcover.posneg import PosNegPartialSetCover
from repro.setcover.redblue import RedBlueSetCover

__all__ = [
    "SetCoverReduction",
    "problem_to_rbsc",
    "problem_to_posneg",
]


class SetCoverReduction:
    """Holds a covering instance plus the decoding map set name → fact."""

    def __init__(
        self,
        covering,
        fact_of_set: dict[str, Fact],
    ):
        self.covering = covering
        self._fact_of_set = fact_of_set

    def decode(self, selection: list[str]) -> list[Fact]:
        """Map a selection of covering sets back to source deletions."""
        return [self._fact_of_set[name] for name in selection]

    @property
    def set_names(self) -> list[str]:
        return list(self._fact_of_set)


def _covering_sets(
    problem: DeletionPropagationProblem,
) -> tuple[dict[str, frozenset[ViewTuple]], dict[str, Fact]]:
    if not problem.is_key_preserving():
        raise NotKeyPreservingError(
            "the set-cover reduction requires key-preserving queries "
            "(unique witnesses)"
        )
    sets: dict[str, frozenset[ViewTuple]] = {}
    fact_of_set: dict[str, Fact] = {}
    for fact in problem.candidate_facts():
        name = f"del:{fact!r}"
        sets[name] = problem.dependents(fact)
        fact_of_set[name] = fact
    return sets, fact_of_set


def problem_to_rbsc(problem: DeletionPropagationProblem) -> SetCoverReduction:
    """Claim 1's reduction: view side-effect → Red-Blue Set Cover."""
    sets, fact_of_set = _covering_sets(problem)
    preserved = problem.preserved_view_tuples()
    instance = RedBlueSetCover(
        reds=preserved,
        blues=problem.deleted_view_tuples(),
        sets=sets,
        red_weights={vt: problem.weight(vt) for vt in preserved},
    )
    return SetCoverReduction(instance, fact_of_set)


def problem_to_posneg(
    problem: BalancedDeletionPropagationProblem,
) -> SetCoverReduction:
    """Lemma 1's reduction: balanced deletion propagation → PN-PSC."""
    sets, fact_of_set = _covering_sets(problem)
    preserved = problem.preserved_view_tuples()
    instance = PosNegPartialSetCover(
        positives=problem.deleted_view_tuples(),
        negatives=preserved,
        sets=sets,
        negative_weights={vt: problem.weight(vt) for vt in preserved},
        positive_penalty=problem.delta_penalty,
    )
    return SetCoverReduction(instance, fact_of_set)
