"""Theorem 2's reduction: PN-PSC → Balanced deletion propagation.

Identical table construction to Theorem 1 (see
:mod:`repro.reductions.theorem1`), with the element roles re-cast:
positives take the place of blues (their views form ΔV) and negatives
take the place of reds (their views are the ones to preserve).  The
balanced objective — uneliminated ΔV plus collateral — then coincides
with the PN-PSC cost (uncovered positives plus covered negatives), which
transfers Miettinen's inapproximability bound.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import ReductionError
from repro.core.problem import BalancedDeletionPropagationProblem
from repro.core.session import SolveSession
from repro.core.solution import Propagation
from repro.reductions.theorem1 import Theorem1Reduction, rbsc_to_vse
from repro.setcover.posneg import PosNegPartialSetCover
from repro.setcover.redblue import RedBlueSetCover

__all__ = ["Theorem2Reduction", "posneg_to_balanced_vse"]

Element = Hashable


class Theorem2Reduction:
    """Materialized Theorem 2 reduction with decoding maps."""

    def __init__(
        self,
        posneg: PosNegPartialSetCover,
        problem: BalancedDeletionPropagationProblem,
        inner: Theorem1Reduction,
    ):
        self.posneg = posneg
        self.problem = problem
        self._inner = inner
        self.row_of_set = inner.row_of_set
        self.set_of_row = inner.set_of_row
        self.view_of_element = inner.view_of_element

    @property
    def session(self) -> SolveSession:
        """The compile-once solve context of the constructed balanced
        instance (shared with any solver run on it)."""
        return SolveSession.of(self.problem)

    def selection_to_propagation(self, selection: list[str]) -> Propagation:
        facts = [self.row_of_set[name] for name in selection]
        return Propagation(self.problem, facts, method="theorem2-transfer")

    def propagation_to_selection(self, propagation: Propagation) -> list[str]:
        out = []
        for fact in sorted(propagation.deleted_facts):
            name = self.set_of_row.get(fact)
            if name is None:
                raise ReductionError(f"deleted fact {fact!r} is not a set row")
            out.append(name)
        return out

    def balanced_cost_equals_cost(self, selection: list[str]) -> bool:
        """The Theorem 2 invariant: balanced cost of the transferred
        deletions equals the PN-PSC cost of the selection (for elements
        occurring in at least one set)."""
        propagation = self.selection_to_propagation(selection)
        return propagation.balanced_cost() == self.posneg.cost(selection)


def posneg_to_balanced_vse(
    posneg: PosNegPartialSetCover,
) -> Theorem2Reduction:
    """Build the Theorem 2 balanced instance for a PN-PSC instance.

    Positives in no set would contribute a constant ``positive_penalty``
    to every solution on the PN-PSC side but have no view on the VSE
    side; they are rejected to keep the cost equality exact.
    """
    for p in posneg.positives:
        if not any(p in members for members in posneg.sets.values()):
            raise ReductionError(
                f"positive element {p!r} occurs in no set; its penalty "
                "would be a constant offset with no view counterpart"
            )
    # Reuse the Theorem 1 table/query construction via an RBSC skin.
    rbsc = RedBlueSetCover(
        reds=posneg.negatives,
        blues=posneg.positives,
        sets=posneg.sets,
        red_weights={
            n: posneg.negative_weight(n) for n in posneg.negatives
        },
    )
    inner = rbsc_to_vse(rbsc)
    base = inner.problem
    element_of_view = {
        view_name: element
        for element, view_name in inner.view_of_element.items()
    }
    # Re-wrap as a *balanced* problem over the same data.
    deletions = {
        name: sorted(base.deletion.on(name)) for name in base.views.names
    }
    problem = BalancedDeletionPropagationProblem(
        base.instance,
        base.queries,
        {k: v for k, v in deletions.items() if v},
        weights={
            vt: posneg.negative_weight(element_of_view[vt.view])
            for vt in base.preserved_view_tuples()
        },
        delta_penalty=posneg.positive_penalty,
    )
    return Theorem2Reduction(posneg, problem, inner)
