"""Reductions between deletion propagation and covering problems.

* :mod:`repro.reductions.to_setcover` — the algorithmic (upper-bound)
  direction used by Claim 1 and Lemma 1.
* :mod:`repro.reductions.theorem1` — RBSC → VSE hardness construction.
* :mod:`repro.reductions.theorem2` — PN-PSC → balanced VSE hardness
  construction.
"""

from repro.reductions.theorem1 import Theorem1Reduction, rbsc_to_vse
from repro.reductions.theorem2 import Theorem2Reduction, posneg_to_balanced_vse
from repro.reductions.to_setcover import (
    SetCoverReduction,
    problem_to_posneg,
    problem_to_rbsc,
)

__all__ = [
    "SetCoverReduction",
    "Theorem1Reduction",
    "Theorem2Reduction",
    "posneg_to_balanced_vse",
    "problem_to_posneg",
    "problem_to_rbsc",
    "rbsc_to_vse",
]
