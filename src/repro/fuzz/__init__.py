"""Property-based differential fuzzing across the solver/verifier routes.

After the compiled arena (PR 2) the repository holds *four* independent
routes to the same answer — the arena-backed solvers, their object-level
twins in :mod:`repro.core.reference`, the two re-evaluation backends of
:func:`repro.core.verify.verify_solution` (join engine and SQLite), and
the exact ILP of :mod:`repro.core.exact`.  This package generates seeded
random problems covering the edge shapes (empty ΔV, weight ties, forest
vs cyclic joins, multi-view shared facts, self-overlapping witnesses),
runs every applicable route, and asserts they agree:

* arena vs reference twins produce identical propagations;
* every produced propagation is consistent under both
  ``verify_solution`` backends;
* on small instances, each route with a quoted guarantee stays within
  its approximation bound of the ILP optimum;
* metamorphic invariants hold (adding an unrelated fact never changes
  the answer; duplicated / already-satisfied deletion requests are
  no-ops; serialization round-trips preserve the answer).

Failures are shrunk greedily (:mod:`repro.fuzz.shrink`) and persisted as
problem documents in a corpus directory (:mod:`repro.fuzz.corpus`) which
the test suite replays as regression tests.  Entry point:
``python -m repro.cli fuzz``.
"""

from repro.fuzz.corpus import (
    corpus_paths,
    load_corpus_case,
    replay_corpus_case,
    write_corpus_case,
)
from repro.fuzz.generator import CASE_KINDS, FuzzCase, generate_case
from repro.fuzz.harness import CaseReport, Disagreement, check_problem, run_fuzz
from repro.fuzz.shrink import shrink_document

__all__ = [
    "CASE_KINDS",
    "CaseReport",
    "Disagreement",
    "FuzzCase",
    "check_problem",
    "corpus_paths",
    "generate_case",
    "load_corpus_case",
    "replay_corpus_case",
    "run_fuzz",
    "shrink_document",
    "write_corpus_case",
]
