"""Failing-case corpus: persistence and replay.

A corpus entry is one JSON document::

    {
      "version": 1,
      "kind": "chain",              # generator shape (or "seed" for
                                    # hand-written regression cases)
      "seed": 0, "iteration": 17,   # provenance (null for hand-written)
      "checks": ["verify:auto:sqlite"],
      "detail": "...",              # human-readable first failure
      "problem": { ... }            # repro.io.serialize problem document
    }

Entries are content-addressed (``fuzz-<sha1 prefix>.json``) so the same
shrunken case is never stored twice, and the test suite replays every
entry through :func:`repro.fuzz.harness.check_problem` — a corpus file
is a regression test the moment it lands.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "corpus_paths",
    "load_corpus_case",
    "replay_corpus_case",
    "write_corpus_case",
]


def corpus_paths(corpus_dir: str | Path) -> list[Path]:
    """Every corpus entry under ``corpus_dir``, sorted by name."""
    root = Path(corpus_dir)
    if not root.is_dir():
        return []
    return sorted(root.glob("*.json"))


def load_corpus_case(path: str | Path) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    if "problem" not in entry:
        raise ValueError(f"{path}: corpus entry has no 'problem' document")
    return entry


def write_corpus_case(corpus_dir: str | Path, entry: Mapping[str, Any]) -> Path:
    """Persist one entry, content-addressed by its problem document."""
    root = Path(corpus_dir)
    root.mkdir(parents=True, exist_ok=True)
    digest = hashlib.sha1(
        json.dumps(entry["problem"], sort_keys=True).encode("utf-8")
    ).hexdigest()[:12]
    path = root / f"fuzz-{digest}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dict(entry), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def replay_corpus_case(path: str | Path):
    """Re-run the differential checks on one corpus entry.

    Returns the :class:`~repro.fuzz.harness.CaseReport`; the caller (the
    pytest bridge, CI) asserts it is clean.
    """
    from repro.fuzz.harness import check_problem
    from repro.io.serialize import problem_from_dict

    entry = load_corpus_case(path)
    problem = problem_from_dict(entry["problem"])
    return check_problem(problem, kind=entry.get("kind", "corpus"))
