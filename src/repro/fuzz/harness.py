"""The differential cross-check executor.

:func:`check_problem` runs one problem through every applicable route
and returns a :class:`CaseReport` listing the disagreements (empty when
all routes agree).  The checks, in the order they run:

1. **Serialization round-trip** — ``problem_to_dict`` →
   ``problem_from_dict`` must reproduce the views and ΔV.
1b. **Classifier agreement** — the session profile's classifier flags
   must match a fresh standalone structural scan
   (:func:`repro.relational.analysis.query_set_flags`).
2. **Route sweep** — every applicable registered strategy
   (:mod:`repro.core.registry`) must produce a feasible propagation
   (standard problems), and each propagation must be *consistent* under
   both :func:`repro.core.verify.verify_solution` backends (join engine
   and SQLite), with the backend's recomputed feasibility/side-effect
   matching the witness bookkeeping.
3. **Arena vs reference** — the arena-backed greedy/local-search
   solvers must match their object-backed twins in
   :mod:`repro.core.reference` move-for-move (identical fact sets).
4. **Exact ratio** — on small instances, the ILP optimum is computed
   and every route with a quoted guarantee must stay within its bound
   (Claim 1's ``2·sqrt(l·‖V‖·log‖ΔV‖)``, Theorem 3's ``l``, Theorem 4's
   ``2·sqrt(‖V‖)``; exact routes must match the optimum).  No route may
   beat the ILP (that would indict the ILP itself).
5. **Metamorphic invariants** — adding a fact in a fresh unrelated
   relation never changes any deterministic route's answer; duplicating
   ΔV rows in the problem document is a no-op; after applying a
   feasible propagation, re-solving the residual instance (every
   requested tuple already eliminated) deletes nothing.

A raised ``SolverError``/``NotKeyPreservingError`` marks a route as
inapplicable to the instance — only *crashes* and *disagreements* are
failures.  :func:`run_fuzz` drives generate → check → shrink → persist.
"""

from __future__ import annotations

import random
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import (
    DeadlineExceededError,
    NotKeyPreservingError,
    ProblemError,
    SolverError,
)
from repro.relational.instance import Instance
from repro.relational.schema import Key, RelationSchema, Schema
from repro.relational.tuples import Fact
from repro.core.general import claim1_bound
from repro.core.lowdeg_tree import theorem4_bound
from repro.core.problem import (
    BalancedDeletionPropagationProblem,
    DeletionPropagationProblem,
)
from repro.core.registry import solve
from repro.core.resilience import Deadline, deadline_scope
from repro.core.session import SolveSession
from repro.core.solution import Propagation
from repro.core.verify import verify_solution

__all__ = ["CaseReport", "Disagreement", "FuzzStats", "check_problem", "run_fuzz"]

_EPS = 1e-6

#: Instances small enough for the exact ILP cross-check.  The arena-
#: compiled route (sparse blocks, exact lexicographic tie-break) solves
#: far larger programs in milliseconds than the old dense per-fact
#: assembly did, so the referee covers a wider slice of the generator's
#: output distribution.
_ILP_MAX_CANDIDATES = 48
_ILP_MAX_VIEW_TUPLES = 200

#: Name of the relation used by the unrelated-fact metamorphic check;
#: chosen to sort last so arena fact IDs of the original facts shift
#: as little as possible (the check must hold regardless).
_UNRELATED_RELATION = "ZZ_FUZZ_UNRELATED"


@dataclass(frozen=True)
class Disagreement:
    """One cross-route disagreement (or route crash)."""

    check: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.check}] {self.detail}"


@dataclass
class CaseReport:
    """Everything :func:`check_problem` learned about one case."""

    kind: str
    routes_run: list[str] = field(default_factory=list)
    failures: list[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def fail(self, check: str, detail: str) -> None:
        self.failures.append(Disagreement(check, detail))


# ----------------------------------------------------------------------
# Route selection
# ----------------------------------------------------------------------


def _routes_for(problem: DeletionPropagationProblem) -> list[str]:
    """The strategies worth running on this problem's structure.

    Reads the problem's cached :class:`StructureProfile`, so the route
    sweep and the ``auto`` dispatch below share one set of structural
    predicates (computed exactly once per case)."""
    profile = SolveSession.of(problem).profile
    if isinstance(problem, BalancedDeletionPropagationProblem):
        routes = ["auto", "balanced-lowdeg"]
        if profile.key_preserving:
            routes += ["greedy-min-damage", "greedy-max-coverage"]
        return routes
    routes = ["auto"]
    if profile.key_preserving:
        routes += ["claim1", "greedy-min-damage", "greedy-max-coverage"]
        if profile.forest_case and profile.self_join_free:
            routes += ["primal-dual", "lowdeg-tree"]
        if profile.dp_tree_applies:
            routes.append("dp-tree")
    return routes


#: Quoted multiplicative guarantees per route (None = no guarantee, the
#: route is only checked for verifier consistency and not-beating-exact).
_ROUTE_BOUND: dict[str, Callable[[DeletionPropagationProblem], float] | None] = {
    "claim1": claim1_bound,
    "primal-dual": lambda p: float(p.max_arity),
    "lowdeg-tree": theorem4_bound,
    "dp-tree": lambda p: 1.0,
    # auto dispatches to the strongest applicable method; its weakest
    # guarantee on key-preserving problems is Claim 1's (on the forest
    # case it is the better of the l- and Theorem-4 bounds, both also
    # covered by taking the max).
    "auto": lambda p: max(claim1_bound(p), float(p.max_arity), theorem4_bound(p)),
    "greedy-min-damage": None,
    "greedy-max-coverage": None,
    "balanced-lowdeg": None,
}


def _solve_route(
    problem: DeletionPropagationProblem, method: str, report: CaseReport
) -> Propagation | None:
    """Run one route; SolverError = inapplicable, anything else = crash."""
    try:
        propagation = solve(problem, method=method)
    except DeadlineExceededError:
        # The campaign budget (a SolverError subclass — it must not be
        # swallowed as "inapplicable") propagates to run_fuzz.
        raise
    except (SolverError, NotKeyPreservingError):
        return None
    except Exception:
        report.fail(
            f"route-crash:{method}",
            traceback.format_exc(limit=3).strip().splitlines()[-1],
        )
        return None
    report.routes_run.append(method)
    return propagation


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------


def _check_roundtrip(
    problem: DeletionPropagationProblem, report: CaseReport
) -> None:
    import json

    from repro.io.serialize import problem_from_dict, problem_to_dict

    try:
        # Through real JSON text, not just the dict form — the corpus
        # stores text, and the tuple→array encoding must invert.
        twin = problem_from_dict(
            json.loads(json.dumps(problem_to_dict(problem)))
        )
    except DeadlineExceededError:
        raise
    except Exception as exc:
        report.fail("serialize-roundtrip", f"{type(exc).__name__}: {exc}")
        return
    if sorted(twin.all_view_tuples()) != sorted(problem.all_view_tuples()):
        report.fail("serialize-roundtrip", "view tuples changed")
    if sorted(twin.deleted_view_tuples()) != sorted(
        problem.deleted_view_tuples()
    ):
        report.fail("serialize-roundtrip", "ΔV changed")


def _check_classifier_agreement(
    problem: DeletionPropagationProblem, report: CaseReport
) -> None:
    """The session profile's classifier flags must agree with a fresh
    standalone structural scan.

    Auto dispatch and ``repro classify`` both read the flags off the
    cached :class:`StructureProfile` (one shared scan); this check
    pins that cache to the ground truth
    :func:`repro.relational.analysis.query_set_flags` recomputes from
    scratch, so a stale or mis-serialized profile hint cannot silently
    reroute a problem."""
    from repro.relational.analysis import query_set_flags

    try:
        cached = SolveSession.of(problem).profile.classification_flags()
        fresh = query_set_flags(list(problem.queries))
    except DeadlineExceededError:
        raise
    except Exception as exc:
        report.fail("classify-vs-profile", f"{type(exc).__name__}: {exc}")
        return
    for name, value in fresh.items():
        if cached.get(name) != value:
            report.fail(
                "classify-vs-profile",
                f"flag {name}: profile says {cached.get(name)!r}, "
                f"fresh scan says {value!r}",
            )


def _check_propagation(
    method: str, propagation: Propagation, report: CaseReport
) -> None:
    problem = propagation.problem
    balanced = isinstance(problem, BalancedDeletionPropagationProblem)
    if not balanced and not propagation.is_feasible():
        report.fail(
            f"infeasible:{method}",
            f"surviving ΔV: {sorted(map(repr, propagation.surviving_delta))[:4]}",
        )
    for backend in ("engine", "sqlite"):
        try:
            verdict = verify_solution(propagation, backend=backend)
        except DeadlineExceededError:
            raise
        except Exception as exc:
            report.fail(
                f"verify-crash:{method}:{backend}",
                f"{type(exc).__name__}: {exc}",
            )
            continue
        if not verdict.consistent:
            report.fail(
                f"verify:{method}:{backend}",
                "; ".join(verdict.mismatches),
            )
            continue
        if verdict.feasible != propagation.is_feasible():
            report.fail(
                f"verify-feasibility:{method}:{backend}",
                f"backend says {verdict.feasible}, "
                f"bookkeeping says {propagation.is_feasible()}",
            )
        if abs(verdict.side_effect - propagation.side_effect()) > _EPS:
            report.fail(
                f"verify-side-effect:{method}:{backend}",
                f"backend {verdict.side_effect!r} vs "
                f"bookkeeping {propagation.side_effect()!r}",
            )


def _check_arena_vs_reference(
    problem: DeletionPropagationProblem, report: CaseReport
) -> None:
    if not SolveSession.of(problem).profile.key_preserving:
        return
    from repro.core.greedy import (
        solve_greedy_max_coverage,
        solve_greedy_min_damage,
    )
    from repro.core.local_search import improve
    from repro.core.reference import (
        reference_greedy_max_coverage,
        reference_greedy_min_damage,
        reference_improve,
    )

    pairs = [
        ("greedy-min-damage", solve_greedy_min_damage, reference_greedy_min_damage),
        ("greedy-max-coverage", solve_greedy_max_coverage, reference_greedy_max_coverage),
    ]
    start: Propagation | None = None
    for name, arena_solver, reference_solver in pairs:
        try:
            arena = arena_solver(problem)
            reference = reference_solver(problem)
        except DeadlineExceededError:
            raise
        except (SolverError, NotKeyPreservingError):
            continue
        except Exception:
            report.fail(
                f"twin-crash:{name}",
                traceback.format_exc(limit=3).strip().splitlines()[-1],
            )
            continue
        if arena.deleted_facts != reference.deleted_facts:
            report.fail(
                f"arena-vs-reference:{name}",
                f"arena {sorted(map(repr, arena.deleted_facts))} != "
                f"reference {sorted(map(repr, reference.deleted_facts))}",
            )
        if start is None:
            start = arena
    balanced = isinstance(problem, BalancedDeletionPropagationProblem)
    if start is not None and (balanced or start.is_feasible()):
        try:
            improved = improve(start)
            ref_improved = reference_improve(start)
        except DeadlineExceededError:
            raise
        except Exception:
            report.fail(
                "twin-crash:local-search",
                traceback.format_exc(limit=3).strip().splitlines()[-1],
            )
            return
        if improved.deleted_facts != ref_improved.deleted_facts:
            report.fail(
                "arena-vs-reference:local-search",
                f"arena {sorted(map(repr, improved.deleted_facts))} != "
                f"reference {sorted(map(repr, ref_improved.deleted_facts))}",
            )


def _ilp_applicable(problem: DeletionPropagationProblem) -> bool:
    return (
        SolveSession.of(problem).profile.key_preserving
        and len(problem.candidate_facts()) <= _ILP_MAX_CANDIDATES
        and problem.norm_v <= _ILP_MAX_VIEW_TUPLES
    )


def _check_ratios(
    problem: DeletionPropagationProblem,
    produced: dict[str, Propagation],
    report: CaseReport,
) -> None:
    if not _ilp_applicable(problem):
        return
    from repro.core.exact import solve_exact

    try:
        optimum = solve_exact(problem)
    except DeadlineExceededError:
        raise
    except (SolverError, NotKeyPreservingError):
        return
    except Exception:
        report.fail(
            "route-crash:exact",
            traceback.format_exc(limit=3).strip().splitlines()[-1],
        )
        return
    report.routes_run.append("exact")
    _check_propagation("exact", optimum, report)

    balanced = isinstance(problem, BalancedDeletionPropagationProblem)
    objective = (
        (lambda s: s.balanced_cost()) if balanced else (lambda s: s.side_effect())
    )
    opt_value = objective(optimum)
    for method, propagation in produced.items():
        if not balanced and not propagation.is_feasible():
            continue
        value = objective(propagation)
        if value < opt_value - _EPS:
            report.fail(
                f"beats-exact:{method}",
                f"{method} objective {value!r} < exact optimum {opt_value!r}",
            )
        if balanced:
            continue  # quoted bounds below are for the standard problem
        bound_fn = _ROUTE_BOUND.get(method)
        if bound_fn is None:
            continue
        bound = bound_fn(problem)
        if value > bound * opt_value + _EPS:
            report.fail(
                f"ratio:{method}",
                f"side-effect {value!r} exceeds bound {bound:g} × "
                f"optimum {opt_value!r}",
            )


# ----------------------------------------------------------------------
# Metamorphic invariants
# ----------------------------------------------------------------------


def _deletions_mapping(problem: DeletionPropagationProblem) -> dict[str, list]:
    return {
        name: [tuple(values) for values in sorted(problem.deletion.on(name))]
        for name in problem.views.names
        if problem.deletion.on(name)
    }


def _with_unrelated_fact(
    problem: DeletionPropagationProblem,
) -> DeletionPropagationProblem:
    """The same problem over an instance extended with one fact in a
    fresh relation no query mentions."""
    relations = list(problem.instance.schema) + [
        RelationSchema(_UNRELATED_RELATION, ("k", "pad"), Key((0,)))
    ]
    schema = Schema(relations)
    instance = Instance(schema)
    for fact in problem.instance:
        instance.add(fact)
    instance.add(Fact(_UNRELATED_RELATION, ("zz0", "zzpad")))
    cls = type(problem)
    kwargs: dict[str, Any] = {}
    if isinstance(problem, BalancedDeletionPropagationProblem):
        kwargs["delta_penalty"] = problem.delta_penalty
    return cls(
        instance,
        list(problem.queries),
        _deletions_mapping(problem),
        weights=dict(problem._weights),
        **kwargs,
    )


def _check_metamorphic(
    problem: DeletionPropagationProblem,
    produced: dict[str, Propagation],
    report: CaseReport,
) -> None:
    # (1) Adding an unrelated fact never changes any route's answer.
    try:
        augmented = _with_unrelated_fact(problem)
    except DeadlineExceededError:
        raise
    except Exception as exc:
        report.fail("metamorphic-setup", f"{type(exc).__name__}: {exc}")
        return
    for method, original in produced.items():
        try:
            again = solve(augmented, method=method)
        except DeadlineExceededError:
            raise
        except (SolverError, NotKeyPreservingError) as exc:
            report.fail(
                f"metamorphic-unrelated-fact:{method}",
                f"became inapplicable: {exc}",
            )
            continue
        except Exception:
            report.fail(
                f"metamorphic-unrelated-fact:{method}",
                traceback.format_exc(limit=3).strip().splitlines()[-1],
            )
            continue
        if again.deleted_facts != original.deleted_facts:
            report.fail(
                f"metamorphic-unrelated-fact:{method}",
                f"answer changed: {sorted(map(repr, original.deleted_facts))}"
                f" -> {sorted(map(repr, again.deleted_facts))}",
            )

    # (2) Duplicated ΔV rows in the document are a no-op (the request
    # is a set; deleting an already-requested tuple twice changes
    # nothing).
    from repro.io.serialize import problem_from_dict, problem_to_dict

    doc = problem_to_dict(problem)
    if doc["deletions"] and "auto" in produced:
        doubled = dict(doc)
        doubled["deletions"] = {
            name: [list(row) for row in rows] + [list(rows[0])]
            for name, rows in doc["deletions"].items()
        }
        try:
            twin = solve(problem_from_dict(doubled), method="auto")
        except DeadlineExceededError:
            raise
        except Exception as exc:
            report.fail(
                "metamorphic-duplicate-request",
                f"{type(exc).__name__}: {exc}",
            )
        else:
            if twin.deleted_facts != produced["auto"].deleted_facts:
                report.fail(
                    "metamorphic-duplicate-request",
                    "duplicated ΔV rows changed the answer",
                )

    # (3) Once a feasible propagation is applied, every requested view
    # tuple is already eliminated — re-solving the residual instance is
    # a no-op (nothing left to delete, no further side-effect).
    base = produced.get("auto")
    if base is not None and base.is_feasible():
        try:
            residual_instance = problem.instance.without(base.deleted_facts)
            residual = DeletionPropagationProblem(
                residual_instance, list(problem.queries), {}
            )
            noop = solve(residual, method="auto")
        except DeadlineExceededError:
            raise
        except Exception as exc:
            report.fail("metamorphic-residual", f"{type(exc).__name__}: {exc}")
        else:
            if noop.deleted_facts:
                report.fail(
                    "metamorphic-residual",
                    f"residual solve deleted "
                    f"{sorted(map(repr, noop.deleted_facts))}",
                )
            elif noop.eliminated_view_tuples:
                report.fail(
                    "metamorphic-residual",
                    "empty residual propagation claims eliminations",
                )


# ----------------------------------------------------------------------
# Top-level entry points
# ----------------------------------------------------------------------


def check_problem(
    problem: DeletionPropagationProblem,
    kind: str = "adhoc",
    metamorphic: bool = True,
    deadline: Deadline | None = None,
) -> CaseReport:
    """Run the full differential check battery on one problem.

    ``deadline`` bounds the battery *cooperatively*: it is installed as
    the ambient deadline scope, so the solver hot loops inside each
    route check it mid-solve — an adversarial case cannot pin the
    campaign for longer than one checkpoint stride past the budget.
    Expiry raises :class:`~repro.errors.DeadlineExceededError` to the
    caller (:func:`run_fuzz` turns it into a clean campaign stop).
    """
    report = CaseReport(kind=kind)
    with deadline_scope(deadline):
        _check_roundtrip(problem, report)
        _check_classifier_agreement(problem, report)

        produced: dict[str, Propagation] = {}
        for method in _routes_for(problem):
            if deadline is not None:
                deadline.check(what=f"fuzz route sweep ({method})")
            propagation = _solve_route(problem, method, report)
            if propagation is None:
                continue
            produced[method] = propagation
            _check_propagation(method, propagation, report)

        if deadline is not None:
            deadline.check(what="fuzz cross-checks")
        _check_arena_vs_reference(problem, report)
        _check_ratios(problem, produced, report)
        if metamorphic:
            if deadline is not None:
                deadline.check(what="fuzz metamorphic checks")
            _check_metamorphic(problem, produced, report)
    return report


@dataclass
class FuzzStats:
    """Summary of one :func:`run_fuzz` campaign."""

    iterations: int = 0
    routes: int = 0
    failures: list[dict] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def run_fuzz(
    seed: int,
    iterations: int,
    budget_seconds: float | None = None,
    kinds: tuple[str, ...] | None = None,
    corpus_dir: str | None = None,
    shrink: bool = True,
    on_event: Callable[[str], None] | None = None,
) -> FuzzStats:
    """Generate → check → (shrink → persist) loop.

    Each iteration derives its own :class:`random.Random` from
    ``(seed, iteration)``, so any failing iteration can be replayed in
    isolation.  Failures are shrunk (when ``shrink``) and written to
    ``corpus_dir`` as replayable problem documents.
    """
    from repro.fuzz.corpus import write_corpus_case
    from repro.fuzz.generator import CASE_KINDS, generate_case
    from repro.fuzz.shrink import shrink_document
    from repro.io.serialize import problem_from_dict, problem_to_dict

    kinds = tuple(kinds) if kinds else CASE_KINDS
    say = on_event or (lambda _message: None)
    stats = FuzzStats()
    started = time.perf_counter()
    # A real Deadline, not an every-iteration elapsed check: the budget
    # also cuts *through* a slow case via the solver checkpoints, so one
    # adversarial instance cannot blow far past budget_seconds.
    deadline = (
        Deadline.after(budget_seconds) if budget_seconds is not None else None
    )
    for iteration in range(iterations):
        if deadline is not None and deadline.expired:
            say(f"budget exhausted after {iteration} iterations")
            break
        rng = random.Random((seed * 1_000_003 + iteration) & 0xFFFFFFFF)
        try:
            case = generate_case(rng, kinds)
        except ProblemError:
            continue  # degenerate sample (e.g. empty views); not a bug
        try:
            report = check_problem(
                case.problem, kind=case.kind, deadline=deadline
            )
        except DeadlineExceededError:
            say(f"budget exhausted during iteration {iteration}")
            break
        stats.iterations += 1
        stats.routes += len(report.routes_run)
        if report.ok:
            continue
        failure = report.failures[0]
        say(
            f"iteration {iteration} ({case.kind}): "
            f"{len(report.failures)} disagreement(s); first: {failure}"
        )
        doc = problem_to_dict(case.problem)
        if shrink:
            doc, _ = shrink_document(
                doc,
                check=failure.check,
                rebuild=problem_from_dict,
                run_checks=lambda p: check_problem(p, kind=case.kind),
            )
        entry = {
            "version": 1,
            "kind": case.kind,
            "seed": seed,
            "iteration": iteration,
            "checks": [f.check for f in report.failures],
            "detail": str(failure),
            "problem": doc,
        }
        stats.failures.append(entry)
        if corpus_dir is not None:
            path = write_corpus_case(corpus_dir, entry)
            say(f"  wrote shrunken case to {path}")
    stats.wall_seconds = time.perf_counter() - started
    return stats
