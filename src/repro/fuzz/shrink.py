"""Greedy test-case shrinking.

Works on the serialized problem *document* (the JSON form of
:mod:`repro.io.serialize`), because that is what gets persisted to the
corpus and replayed: a shrunken document is immediately a regression
test.  The strategy is classic delta-debugging reduced to its greedy
core — try removing one component at a time and keep the removal
whenever the *same* disagreement still reproduces:

1. drop ΔV rows;
2. drop whole queries (with their ΔV entries);
3. drop facts — when removing a fact invalidates ΔV rows (the view
   tuple disappears), those rows are dropped alongside it, since a
   fact and the requests it witnesses shrink or survive together;
4. drop weight entries.

Passes repeat until a fixpoint or the attempt budget is exhausted.  A
candidate document that fails to rebuild (``ViewError``, parse errors)
counts as not reproducing — shrinking never trades one bug for another:
the failure is matched by its ``check`` identifier.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Mapping

from repro.errors import DeadlineExceededError

__all__ = ["shrink_document"]

_DEFAULT_BUDGET = 400


def _reproduces(
    doc: Mapping[str, Any],
    check: str,
    rebuild: Callable[[Mapping[str, Any]], Any],
    run_checks: Callable[[Any], Any],
) -> bool:
    """Does this document still trigger the same disagreement?"""
    try:
        problem = rebuild(doc)
        report = run_checks(problem)
    except DeadlineExceededError:
        # The ambient shrink deadline, not a property of the candidate:
        # swallowing it would keep probing candidates on an expired
        # clock.  Propagate so the shrink loop can stop cleanly.
        raise
    except Exception:
        return False
    return any(failure.check == check for failure in report.failures)


def _prune_invalid_deletions(
    doc: dict[str, Any],
    rebuild: Callable[[Mapping[str, Any]], Any],
) -> dict[str, Any] | None:
    """Drop ΔV rows that no longer name view tuples (after a fact was
    removed).  Returns the repaired document, or ``None`` when even the
    ΔV-free document does not rebuild."""
    probe = copy.deepcopy(doc)
    probe["deletions"] = {}
    try:
        base = rebuild(probe)
    except DeadlineExceededError:
        raise
    except Exception:
        return None
    repaired = copy.deepcopy(doc)
    pruned: dict[str, list] = {}
    for name, rows in doc.get("deletions", {}).items():
        try:
            view = base.views.view(name)
        except DeadlineExceededError:
            raise
        except Exception:
            continue
        kept = [row for row in rows if tuple(row) in view.tuples]
        if kept:
            pruned[name] = kept
    repaired["deletions"] = pruned
    return repaired


def shrink_document(
    doc: Mapping[str, Any],
    check: str,
    rebuild: Callable[[Mapping[str, Any]], Any],
    run_checks: Callable[[Any], Any],
    max_attempts: int = _DEFAULT_BUDGET,
) -> tuple[dict[str, Any], int]:
    """Greedily shrink ``doc`` while the disagreement ``check``
    reproduces.  Returns ``(shrunken_document, attempts_used)``; the
    input is returned unchanged when it does not reproduce at all (a
    flaky failure never yields a misleading corpus entry).
    """
    current = copy.deepcopy(dict(doc))
    attempts = 0

    def try_candidate(candidate: dict[str, Any]) -> bool:
        nonlocal attempts, current
        if attempts >= max_attempts:
            return False
        attempts += 1
        if _reproduces(candidate, check, rebuild, run_checks):
            current = candidate
            return True
        return False

    if not _reproduces(current, check, rebuild, run_checks):
        return current, 1

    progress = True
    try:
        while progress and attempts < max_attempts:
            progress = False

            # 1. ΔV rows.
            for name in sorted(current.get("deletions", {})):
                index = 0
                while index < len(current["deletions"].get(name, [])):
                    candidate = copy.deepcopy(current)
                    del candidate["deletions"][name][index]
                    if not candidate["deletions"][name]:
                        del candidate["deletions"][name]
                    if try_candidate(candidate):
                        progress = True
                    else:
                        index += 1
                    if attempts >= max_attempts:
                        break

            # 2. Whole queries (only while more than one remains),
            # together with their ΔV entries and weights.
            index = 0
            while len(current.get("queries", [])) > 1 and index < len(
                current["queries"]
            ):
                text = current["queries"][index]
                name = text.split("(", 1)[0].strip()
                candidate = copy.deepcopy(current)
                del candidate["queries"][index]
                candidate.get("deletions", {}).pop(name, None)
                candidate["weights"] = [
                    entry
                    for entry in candidate.get("weights", [])
                    if entry.get("view") != name
                ]
                if try_candidate(candidate):
                    progress = True
                else:
                    index += 1
                if attempts >= max_attempts:
                    break

            # 3. Facts — repairing ΔV rows the removal invalidates.
            for relation in sorted(current.get("facts", {})):
                index = 0
                while index < len(current["facts"].get(relation, [])):
                    candidate = copy.deepcopy(current)
                    del candidate["facts"][relation][index]
                    if not candidate["facts"][relation]:
                        del candidate["facts"][relation]
                    repaired = _prune_invalid_deletions(candidate, rebuild)
                    if repaired is not None and try_candidate(repaired):
                        progress = True
                    else:
                        index += 1
                    if attempts >= max_attempts:
                        break

            # 4. Weight entries.
            index = 0
            while index < len(current.get("weights", [])):
                candidate = copy.deepcopy(current)
                del candidate["weights"][index]
                if try_candidate(candidate):
                    progress = True
                else:
                    index += 1
                if attempts >= max_attempts:
                    break
    except DeadlineExceededError:
        # Deadline fired mid-pass.  Every update to ``current`` was a
        # verified reproducer, so the best-so-far document is still a
        # valid corpus entry — stop shrinking and return it rather than
        # losing the work (or, worse, probing on with an expired clock).
        pass

    return current, attempts
