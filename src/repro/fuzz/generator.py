"""Seeded fuzz-case generation.

Each case kind targets one structural shape the differential checks must
survive; together they cover the edge geometry the hand-picked random
suites never reach systematically:

* ``chain`` / ``star`` / ``forest`` — forest-case joins (Algorithms
  1–4 apply), mildly randomized sizes;
* ``triangle`` / ``general`` — cyclic dual hypergraphs (only the
  Claim 1 pipeline has a guarantee); the ``general`` shape routes
  through the Theorem 1 construction, so every view joins rows of one
  shared relation — maximal multi-view fact sharing and
  self-overlapping witnesses;
* ``shared-facts`` — star instances with many queries over few center
  facts (each center fact sits in witnesses of several views);
* ``weight-ties`` — weights drawn from a tiny level set so ties are
  everywhere and tie-breaking differences become visible;
* ``empty-delta`` — ``ΔV = ∅``; every route must answer with the empty
  propagation;
* ``single-delta`` — ``‖ΔV‖ = 1`` (the exact argmin fast path);
* ``balanced`` — the balanced variant (PN-PSC semantics).

All generation is driven by one :class:`random.Random`, so a seed fully
determines the case.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.problem import DeletionPropagationProblem
from repro.workloads.synthetic import (
    random_general_problem,
    random_problem,
    random_single_query_problem,
    with_empty_delta,
    with_tied_weights,
)
from repro.workloads.trees import (
    random_chain_problem,
    random_forest_problem,
    random_star_problem,
    random_triangle_problem,
)

__all__ = ["CASE_KINDS", "FuzzCase", "generate_case", "make_case"]


@dataclass(frozen=True)
class FuzzCase:
    """One generated differential-check input."""

    kind: str
    problem: DeletionPropagationProblem


def _chain(rng: random.Random) -> DeletionPropagationProblem:
    return random_chain_problem(
        rng,
        num_relations=rng.randint(2, 4),
        facts_per_relation=rng.randint(3, 6),
        num_queries=rng.randint(1, 3),
        delta_fraction=rng.choice((0.1, 0.25, 0.5)),
    )


def _star(rng: random.Random) -> DeletionPropagationProblem:
    return random_star_problem(
        rng,
        num_leaves=rng.randint(2, 3),
        center_facts=rng.randint(2, 4),
        leaf_facts=rng.randint(2, 5),
        num_queries=rng.randint(1, 3),
    )


def _forest(rng: random.Random) -> DeletionPropagationProblem:
    return random_forest_problem(
        rng,
        num_relations=rng.randint(3, 5),
        facts_per_relation=rng.randint(3, 5),
        num_queries=rng.randint(1, 3),
    )


def _triangle(rng: random.Random) -> DeletionPropagationProblem:
    return random_triangle_problem(
        rng,
        center_facts=rng.randint(2, 4),
        leaf_facts=rng.randint(2, 4),
    )


def _general(rng: random.Random) -> DeletionPropagationProblem:
    return random_general_problem(
        rng,
        num_reds=rng.randint(2, 5),
        num_blues=rng.randint(1, 4),
        num_sets=rng.randint(2, 6),
    )


def _shared_facts(rng: random.Random) -> DeletionPropagationProblem:
    return random_star_problem(
        rng,
        num_leaves=rng.randint(2, 3),
        center_facts=2,
        leaf_facts=rng.randint(3, 5),
        num_queries=4,
    )


def _weight_ties(rng: random.Random) -> DeletionPropagationProblem:
    return with_tied_weights(rng, random_problem(rng))


def _empty_delta(rng: random.Random) -> DeletionPropagationProblem:
    return with_empty_delta(random_problem(rng))


def _single_delta(rng: random.Random) -> DeletionPropagationProblem:
    return random_single_query_problem(
        rng,
        facts_per_relation=rng.randint(4, 7),
        num_atoms=rng.randint(2, 3),
        delta_size=1,
    )


def _balanced(rng: random.Random) -> DeletionPropagationProblem:
    return random_problem(rng, balanced=True)


_MAKERS = {
    "chain": _chain,
    "star": _star,
    "forest": _forest,
    "triangle": _triangle,
    "general": _general,
    "shared-facts": _shared_facts,
    "weight-ties": _weight_ties,
    "empty-delta": _empty_delta,
    "single-delta": _single_delta,
    "balanced": _balanced,
}

CASE_KINDS: tuple[str, ...] = tuple(_MAKERS)


def make_case(kind: str, rng: random.Random) -> FuzzCase:
    """Build one case of an explicit kind."""
    try:
        maker = _MAKERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown case kind {kind!r}; known: {', '.join(CASE_KINDS)}"
        ) from None
    return FuzzCase(kind, maker(rng))


def generate_case(
    rng: random.Random, kinds: tuple[str, ...] = CASE_KINDS
) -> FuzzCase:
    """Sample one case from the kind mix (uniform over ``kinds``)."""
    return make_case(rng.choice(list(kinds)), rng)
