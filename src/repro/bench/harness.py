"""Experiment harness: result records, timing, and seeded trial runs.

The experiments in :mod:`repro.bench.experiments` all produce an
:class:`ExperimentResult` — a structured record with the paper claim,
the measured rows, and a pass/fail verdict — so benches and docs render
them uniformly.  :func:`counter_rows` turns the solvers' oracle
counters (:class:`repro.core.oracle.OracleCounters`) into the same row
shape, so perf accounting rides through the identical rendering path.

Perf artifacts are standardized as ``BENCH_<name>.json`` files
(:func:`write_bench_json` / :func:`load_bench_json`) with the schema::

    {
      "bench": "<bench name>",
      "workload": "<workload description>",
      "rows": [{...}, ...],
      "wall_seconds": <total wall-clock of the measured section>,
      "counters": {"oracle_hits": ..., ...}
    }

so the perf trajectory is machine-readable across PRs;
``benchmarks/run_all.py`` aggregates every artifact it finds.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "ExperimentResult",
    "timed",
    "timed_best",
    "geometric_mean",
    "counter_rows",
    "write_bench_json",
    "load_bench_json",
]

_BENCH_SCHEMA_KEYS = ("bench", "workload", "rows", "wall_seconds", "counters")


@dataclass
class ExperimentResult:
    """Outcome of one reproduction experiment (one paper artifact)."""

    experiment_id: str
    title: str
    paper_claim: str
    rows: list[dict] = field(default_factory=list)
    columns: Sequence[str] | None = None
    passed: bool = True
    conclusion: str = ""

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def finish(self, passed: bool, conclusion: str) -> "ExperimentResult":
        self.passed = passed
        self.conclusion = conclusion
        return self


def timed(fn: Callable, *args, **kwargs) -> tuple[object, float]:
    """Run ``fn`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def timed_best(
    fn: Callable,
    *args,
    repeats: int = 5,
    mode: str = "seconds",
    requests: int | None = None,
    **kwargs,
) -> tuple[object, float]:
    """Run ``fn`` ``repeats`` times and return ``(result, measure)``
    under the steady-state estimator for the chosen ``mode``.

    ``mode="seconds"`` (default) returns the *minimum* single-run wall
    time: scheduler interference and cache-cold first calls only ever
    add time, so the fastest observed run is the one closest to the
    code's intrinsic cost.

    ``mode="requests_per_s"`` is the throughput twin for closed-loop
    benches: each call is one loop of ``requests`` requests (or, when
    ``requests`` is ``None``, ``fn`` returns the completed count
    itself), the per-run measure is requests divided by wall seconds,
    and the *maximum* observed rate is returned — interference only
    ever lowers throughput, so max mirrors min-time.  Both modes share
    the ``BENCH_<name>.json`` artifact schema; only the row key and
    the regression-gate direction differ.

    ``fn`` must be repeatable (deterministic, no cross-call state
    accumulation); the returned result is the first run's.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if mode not in ("seconds", "requests_per_s"):
        raise ValueError(
            f"unknown mode {mode!r}; use 'seconds' or 'requests_per_s'"
        )

    def measure(result: object, seconds: float) -> float:
        if mode == "seconds":
            return seconds
        count = requests if requests is not None else result
        if not isinstance(count, int) or count <= 0:
            raise ValueError(
                "requests_per_s mode needs requests= or an fn returning "
                f"a positive request count, got {count!r}"
            )
        return count / seconds if seconds > 0 else float("inf")

    better = min if mode == "seconds" else max
    result, seconds = timed(fn, *args, **kwargs)
    best = measure(result, seconds)
    for _ in range(repeats - 1):
        run_result, seconds = timed(fn, *args, **kwargs)
        best = better(best, measure(run_result, seconds))
    return result, best


def counter_rows(
    counters_by_label: Mapping[str, object],
) -> list[dict]:
    """Flatten a ``{label: OracleCounters}`` mapping into result rows.

    Accepts anything with an ``as_dict()`` method (or a plain mapping),
    so benches can record oracle accounting next to timings without
    importing the oracle module themselves.
    """
    rows: list[dict] = []
    for label, counters in counters_by_label.items():
        as_dict = getattr(counters, "as_dict", None)
        values = dict(as_dict()) if callable(as_dict) else dict(counters)
        rows.append({"label": label, **values})
    return rows


def write_bench_json(
    bench: str,
    workload: str,
    rows: Iterable[Mapping],
    wall_seconds: float,
    counters: Mapping[str, int] | object | None = None,
    directory: str | Path = ".",
) -> Path:
    """Write one ``BENCH_<bench>.json`` perf artifact and return its path.

    ``counters`` accepts a mapping or anything with ``as_dict()`` (an
    :class:`~repro.core.oracle.OracleCounters`); ``None`` records ``{}``.
    """
    as_dict = getattr(counters, "as_dict", None)
    if callable(as_dict):
        counter_map = dict(as_dict())
    elif counters is None:
        counter_map = {}
    else:
        counter_map = dict(counters)
    document = {
        "bench": bench,
        "workload": workload,
        "rows": [dict(row) for row in rows],
        "wall_seconds": float(wall_seconds),
        "counters": counter_map,
    }
    path = Path(directory) / f"BENCH_{bench}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_json(path: str | Path) -> dict:
    """Load and validate one ``BENCH_*.json`` artifact."""
    document = json.loads(Path(path).read_text())
    missing = [key for key in _BENCH_SCHEMA_KEYS if key not in document]
    if missing:
        raise ValueError(
            f"{path}: not a bench artifact (missing keys {missing})"
        )
    return document


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (1.0 for an empty sequence)."""
    values = [v for v in values if v > 0]
    if not values:
        return 1.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
