"""Experiment harness: result records, timing, and seeded trial runs.

The experiments in :mod:`repro.bench.experiments` all produce an
:class:`ExperimentResult` — a structured record with the paper claim,
the measured rows, and a pass/fail verdict — so benches and docs render
them uniformly.  :func:`counter_rows` turns the solvers' oracle
counters (:class:`repro.core.oracle.OracleCounters`) into the same row
shape, so perf accounting rides through the identical rendering path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

__all__ = ["ExperimentResult", "timed", "geometric_mean", "counter_rows"]


@dataclass
class ExperimentResult:
    """Outcome of one reproduction experiment (one paper artifact)."""

    experiment_id: str
    title: str
    paper_claim: str
    rows: list[dict] = field(default_factory=list)
    columns: Sequence[str] | None = None
    passed: bool = True
    conclusion: str = ""

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def finish(self, passed: bool, conclusion: str) -> "ExperimentResult":
        self.passed = passed
        self.conclusion = conclusion
        return self


def timed(fn: Callable, *args, **kwargs) -> tuple[object, float]:
    """Run ``fn`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def counter_rows(
    counters_by_label: Mapping[str, object],
) -> list[dict]:
    """Flatten a ``{label: OracleCounters}`` mapping into result rows.

    Accepts anything with an ``as_dict()`` method (or a plain mapping),
    so benches can record oracle accounting next to timings without
    importing the oracle module themselves.
    """
    rows: list[dict] = []
    for label, counters in counters_by_label.items():
        as_dict = getattr(counters, "as_dict", None)
        values = dict(as_dict()) if callable(as_dict) else dict(counters)
        rows.append({"label": label, **values})
    return rows


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (1.0 for an empty sequence)."""
    values = [v for v in values if v > 0]
    if not values:
        return 1.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
