"""Benchmark harness: experiment records, timing, reporting, and the
E1–E12 reproduction experiments (one per paper artifact)."""

from repro.bench.experiments import (
    all_experiments,
    e12_extensions,
    e1_fig1_example,
    e2_theorem1_reduction,
    e3_fig3_hypergraphs,
    e4_claim1_ratio,
    e5_theorem3_ratio,
    e6_theorem4_ratio,
    e7_alg4_exactness,
    e8_prop1_scaling,
    e9_lemma1_balanced,
    e10_complexity_tables,
    e11_applications,
)
from repro.bench.harness import (
    ExperimentResult,
    counter_rows,
    geometric_mean,
    load_bench_json,
    timed,
    timed_best,
    write_bench_json,
)
from repro.bench.reporting import format_experiment, format_table

__all__ = [
    "ExperimentResult",
    "all_experiments",
    "counter_rows",
    "e10_complexity_tables",
    "e11_applications",
    "e12_extensions",
    "e1_fig1_example",
    "e2_theorem1_reduction",
    "e3_fig3_hypergraphs",
    "e4_claim1_ratio",
    "e5_theorem3_ratio",
    "e6_theorem4_ratio",
    "e7_alg4_exactness",
    "e8_prop1_scaling",
    "e9_lemma1_balanced",
    "format_experiment",
    "format_table",
    "geometric_mean",
    "load_bench_json",
    "timed",
    "timed_best",
    "write_bench_json",
]
