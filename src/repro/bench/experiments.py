"""The reproduction experiments E1–E11 (see DESIGN.md §3).

Every function regenerates one artifact of the paper — a worked example,
a reduction, a classification, or an approximation-ratio guarantee — and
returns an :class:`~repro.bench.harness.ExperimentResult` whose verdict
states whether the measured behaviour matches the paper.  The
``benchmarks/`` scripts time these functions and print their tables;
``EXPERIMENTS.md`` records one run.
"""

from __future__ import annotations

import math
import random

from repro.bench.harness import ExperimentResult, geometric_mean, timed
from repro.core import (
    claim1_bound,
    lemma1_bound,
    solve_balanced,
    solve_dp_tree,
    solve_exact,
    solve_general,
    solve_lowdeg_tree_sweep,
    solve_primal_dual,
    theorem4_bound,
)
from repro.core.classify import PAPER_RESULTS, TABLE_II, TABLE_III, TABLE_IV, TABLE_V
from repro.core.exact import solve_exact_bruteforce
from repro.hypergraph import dual_hypergraph, is_hypertree
from repro.reductions import posneg_to_balanced_vse, rbsc_to_vse
from repro.relational import FunctionalDependency, parse_query
from repro.setcover import solve_posneg_exact, solve_rbsc_exact
from repro.workloads import (
    figure1_problem,
    figure1_problem_q4,
    figure2_rbsc,
    figure3_query_sets,
    random_chain_problem,
    random_forest_problem,
    random_general_problem,
    random_posneg,
    random_rbsc,
    random_star_problem,
)

__all__ = [
    "e1_fig1_example",
    "e2_theorem1_reduction",
    "e3_fig3_hypergraphs",
    "e4_claim1_ratio",
    "e5_theorem3_ratio",
    "e6_theorem4_ratio",
    "e7_alg4_exactness",
    "e8_prop1_scaling",
    "e9_lemma1_balanced",
    "e10_complexity_tables",
    "e11_applications",
    "e12_extensions",
    "all_experiments",
]


# ----------------------------------------------------------------------
# E1 — Fig. 1 worked example
# ----------------------------------------------------------------------


def e1_fig1_example() -> ExperimentResult:
    """Reproduce the Section II.C worked deletions on the Fig. 1
    database."""
    result = ExperimentResult(
        "E1",
        "Fig. 1 bibliographic example",
        "ΔV=(John,XML) on Q3: minimum view side-effect 1, realized both "
        "by {(John,TKDE),(John,TODS)} and by {(John,TKDE),(TODS,XML,30)}; "
        "ΔV=(John,TKDE,XML) on Q4: a single-fact deletion suffices "
        "(key-preserving witness lookup).",
    )
    from repro.core.solution import Propagation
    from repro.relational import Fact

    p3 = figure1_problem()
    optimum = solve_exact(p3)
    result.add_row(
        case="Q3 ΔV=(John,XML)",
        solver="exact",
        side_effect=optimum.side_effect(),
        feasible=optimum.is_feasible(),
        deleted=len(optimum.deleted_facts),
    )
    paper_solution_a = Propagation(
        p3, [Fact("T1", ("John", "TKDE")), Fact("T1", ("John", "TODS"))]
    )
    paper_solution_b = Propagation(
        p3, [Fact("T1", ("John", "TKDE")), Fact("T2", ("TODS", "XML", 30))]
    )
    for label, sol in (("paper sol A", paper_solution_a),
                       ("paper sol B", paper_solution_b)):
        result.add_row(
            case="Q3 ΔV=(John,XML)",
            solver=label,
            side_effect=sol.side_effect(),
            feasible=sol.is_feasible(),
            deleted=len(sol.deleted_facts),
        )
    p4 = figure1_problem_q4()
    optimum4 = solve_exact(p4)
    result.add_row(
        case="Q4 ΔV=(John,TKDE,XML)",
        solver="exact",
        side_effect=optimum4.side_effect(),
        feasible=optimum4.is_feasible(),
        deleted=len(optimum4.deleted_facts),
    )
    ok = (
        optimum.side_effect() == 1.0
        and paper_solution_a.is_feasible()
        and paper_solution_a.side_effect() == 1.0
        and paper_solution_b.is_feasible()
        and paper_solution_b.side_effect() == 1.0
        and optimum4.is_feasible()
        and len(optimum4.deleted_facts) == 1
    )
    return result.finish(
        ok,
        "minimum side-effect 1 on Q3 with both paper solutions optimal; "
        "Q4 deletion handled by one fact",
    )


# ----------------------------------------------------------------------
# E2 — Theorem 1 / Fig. 2 reduction
# ----------------------------------------------------------------------


def e2_theorem1_reduction(seed: int = 7, trials: int = 6) -> ExperimentResult:
    """Cost preservation of the RBSC → VSE reduction (Theorem 1) on
    Fig. 2 and random instances."""
    result = ExperimentResult(
        "E2",
        "Theorem 1 reduction (Fig. 2)",
        "Covering all blues with k covered reds ⇔ eliminating ΔV with "
        "view side-effect k; the reduction is linear and cost-preserving.",
    )
    rng = random.Random(seed)
    instances = [("fig2", figure2_rbsc())]
    for t in range(trials):
        instances.append(
            (
                f"rand{t}",
                random_rbsc(
                    rng,
                    num_reds=rng.randint(3, 6),
                    num_blues=rng.randint(2, 4),
                    num_sets=rng.randint(4, 7),
                ),
            )
        )
    all_ok = True
    for name, rbsc in instances:
        _, rbsc_cost = solve_rbsc_exact(rbsc)
        reduction = rbsc_to_vse(rbsc)
        vse_optimum = solve_exact(reduction.problem)
        equal = abs(rbsc_cost - vse_optimum.side_effect()) < 1e-9
        all_ok &= equal and vse_optimum.is_feasible()
        result.add_row(
            instance=name,
            opt_rbsc=rbsc_cost,
            opt_vse=vse_optimum.side_effect(),
            equal=equal,
            views=reduction.problem.norm_v,
            deletions=reduction.problem.norm_delta_v,
        )
    return result.finish(
        all_ok, "OPT_RBSC = OPT_VSE on every instance (cost preservation)"
    )


# ----------------------------------------------------------------------
# E3 — Fig. 3 dual hypergraphs
# ----------------------------------------------------------------------


def e3_fig3_hypergraphs() -> ExperimentResult:
    """Reproduce Fig. 3's hypertree classification."""
    result = ExperimentResult(
        "E3",
        "Fig. 3 dual hypergraphs",
        "Q1={Q1,Q3,Q4,Q5} is not a hypertree; Q2={Q1,Q3,Q5} and "
        "Q3={Q1,Q2,Q5} are hypertrees (forest cases).",
    )
    expected = {"Q1": False, "Q2": True, "Q3": True}
    all_ok = True
    for name, queries in figure3_query_sets().items():
        graph = dual_hypergraph(queries)
        measured = all(
            is_hypertree(c) for c in graph.connected_components()
        )
        all_ok &= measured == expected[name]
        result.add_row(
            query_set=name,
            relations=len(graph.vertices),
            queries=graph.num_edges,
            hypertree=measured,
            paper=expected[name],
        )
    return result.finish(all_ok, "classification matches Fig. 3 exactly")


# ----------------------------------------------------------------------
# E4 — Claim 1 general-case ratio
# ----------------------------------------------------------------------


def e4_claim1_ratio(seed: int = 11, trials: int = 8) -> ExperimentResult:
    """Measured approximation ratio of the Claim 1 pipeline against the
    exact optimum on general (non-forest) instances."""
    result = ExperimentResult(
        "E4",
        "Claim 1 general approximation",
        "View side-effect approximable within 2·sqrt(l·‖V‖·log‖ΔV‖) by "
        "reduction to RBSC + LowDegTwo.",
    )
    rng = random.Random(seed)
    ratios: list[float] = []
    all_ok = True
    for t in range(trials):
        problem = random_general_problem(
            rng,
            num_reds=rng.randint(3, 6),
            num_blues=rng.randint(2, 4),
            num_sets=rng.randint(4, 7),
        )
        approx = solve_general(problem)
        optimum = solve_exact(problem)
        opt = optimum.side_effect()
        ratio = approx.side_effect() / opt if opt > 0 else 1.0
        bound = claim1_bound(problem)
        within = approx.is_feasible() and (
            opt == 0.0 and approx.side_effect() == 0.0 or ratio <= bound
        )
        all_ok &= within
        ratios.append(ratio)
        result.add_row(
            trial=t,
            norm_v=problem.norm_v,
            norm_dv=problem.norm_delta_v,
            l=problem.max_arity,
            approx=approx.side_effect(),
            opt=opt,
            ratio=round(ratio, 3),
            bound=round(bound, 2),
            within=within,
        )
    return result.finish(
        all_ok,
        f"all ratios within the bound; geometric-mean ratio "
        f"{geometric_mean(ratios):.3f}",
    )


# ----------------------------------------------------------------------
# E5 — Theorem 3: PrimeDualVSE is an l-approximation on forests
# ----------------------------------------------------------------------


def e5_theorem3_ratio(seed: int = 13, trials: int = 10) -> ExperimentResult:
    result = ExperimentResult(
        "E5",
        "Theorem 3: PrimeDualVSE l-approximation",
        "On forest cases the primal-dual algorithm returns a feasible "
        "solution within factor l = max arity of the optimum.",
    )
    rng = random.Random(seed)
    all_ok = True
    ratios = []
    families = ("chain", "star", "forest")
    for t in range(trials):
        family = families[t % 3]
        if family == "chain":
            problem = random_chain_problem(
                rng,
                num_relations=rng.randint(2, 4),
                facts_per_relation=rng.randint(4, 8),
                num_queries=rng.randint(2, 4),
            )
        elif family == "star":
            problem = random_star_problem(
                rng,
                num_leaves=rng.randint(2, 3),
                center_facts=rng.randint(2, 4),
                leaf_facts=rng.randint(3, 6),
                num_queries=rng.randint(2, 4),
            )
        else:
            problem = random_forest_problem(
                rng,
                num_relations=rng.randint(3, 5),
                facts_per_relation=rng.randint(3, 6),
                num_queries=rng.randint(2, 4),
            )
        approx = solve_primal_dual(problem)
        optimum = solve_exact(problem)
        opt = optimum.side_effect()
        ratio = approx.side_effect() / opt if opt > 0 else 1.0
        within = approx.is_feasible() and (
            (opt == 0.0 and approx.side_effect() == 0.0)
            or ratio <= problem.max_arity + 1e-9
        )
        all_ok &= within
        ratios.append(ratio)
        result.add_row(
            trial=t,
            family=family,
            l=problem.max_arity,
            approx=approx.side_effect(),
            opt=opt,
            ratio=round(ratio, 3),
            within_l=within,
        )
    return result.finish(
        all_ok,
        f"feasible and within factor l everywhere; geometric-mean ratio "
        f"{geometric_mean(ratios):.3f}",
    )


# ----------------------------------------------------------------------
# E6 — Theorem 4: LowDegTreeVSETwo 2·sqrt(‖V‖)-approximation
# ----------------------------------------------------------------------


def e6_theorem4_ratio(seed: int = 17, trials: int = 10) -> ExperimentResult:
    result = ExperimentResult(
        "E6",
        "Theorem 4: LowDegTreeVSETwo 2·sqrt(‖V‖)-approximation",
        "The τ-sweep refinement approximates within 2·sqrt(‖V‖), "
        "sometimes better than factor l.",
    )
    rng = random.Random(seed)
    all_ok = True
    sweep_wins = 0
    for t in range(trials):
        problem = random_star_problem(
            rng,
            num_leaves=rng.randint(2, 3),
            center_facts=rng.randint(2, 4),
            leaf_facts=rng.randint(3, 6),
            num_queries=rng.randint(2, 4),
        )
        sweep = solve_lowdeg_tree_sweep(problem)
        primal_dual = solve_primal_dual(problem)
        optimum = solve_exact(problem)
        opt = optimum.side_effect()
        ratio = sweep.side_effect() / opt if opt > 0 else 1.0
        bound = theorem4_bound(problem)
        within = sweep.is_feasible() and (
            (opt == 0.0 and sweep.side_effect() == 0.0) or ratio <= bound
        )
        all_ok &= within
        if sweep.side_effect() <= primal_dual.side_effect():
            sweep_wins += 1
        result.add_row(
            trial=t,
            norm_v=problem.norm_v,
            sweep=sweep.side_effect(),
            primal_dual=primal_dual.side_effect(),
            opt=opt,
            ratio=round(ratio, 3),
            bound=round(bound, 2),
            within=within,
        )
    return result.finish(
        all_ok,
        f"within 2·sqrt(‖V‖) everywhere; sweep at least ties primal-dual "
        f"on {sweep_wins}/{trials} instances",
    )


# ----------------------------------------------------------------------
# E7 — Algorithm 4 exactness on the pivot class
# ----------------------------------------------------------------------


def e7_alg4_exactness(seed: int = 19, trials: int = 8) -> ExperimentResult:
    result = ExperimentResult(
        "E7",
        "Algorithm 4: DPTreeVSE exactness",
        "On forest cases with pivot tuples the DP solves view "
        "side-effect (and the balanced/weighted variants) exactly in "
        "polynomial time.",
    )
    rng = random.Random(seed)
    all_ok = True
    for t in range(trials):
        weighted = t % 2 == 1
        balanced = t % 4 >= 2
        problem = random_chain_problem(
            rng,
            num_relations=rng.randint(2, 4),
            facts_per_relation=rng.randint(4, 7),
            num_queries=rng.randint(2, 4),
            weighted=weighted,
            balanced=balanced,
        )
        dp = solve_dp_tree(problem)
        if balanced:
            optimum = solve_exact_bruteforce(problem)
            dp_cost, opt_cost = dp.balanced_cost(), optimum.balanced_cost()
        else:
            optimum = solve_exact(problem)
            dp_cost, opt_cost = dp.side_effect(), optimum.side_effect()
        equal = abs(dp_cost - opt_cost) < 1e-9
        feasible_ok = balanced or dp.is_feasible()
        all_ok &= equal and feasible_ok
        result.add_row(
            trial=t,
            variant=("balanced" if balanced else "standard")
            + ("+weighted" if weighted else ""),
            dp=round(dp_cost, 3),
            exact=round(opt_cost, 3),
            equal=equal,
        )
    return result.finish(all_ok, "DP matches the exact optimum in every variant")


# ----------------------------------------------------------------------
# E8 — Proposition 1: runtime scaling of Algorithm 1
# ----------------------------------------------------------------------


def e8_prop1_scaling(seed: int = 23) -> ExperimentResult:
    result = ExperimentResult(
        "E8",
        "Proposition 1: PrimeDualVSE runtime scaling",
        "Algorithm 1 terminates in O(l·‖ΔV‖²·‖V‖ + ‖V‖⁴) — polynomial; "
        "measured wall-clock should grow polynomially with instance size.",
    )
    rng = random.Random(seed)
    timings: list[tuple[int, float]] = []
    for facts in (8, 16, 32, 64, 128):
        problem = random_chain_problem(
            rng,
            num_relations=3,
            facts_per_relation=facts,
            num_queries=3,
            delta_fraction=0.15,
        )
        solution, seconds = timed(solve_primal_dual, problem)
        timings.append((problem.norm_v, seconds))
        result.add_row(
            facts_per_relation=facts,
            norm_v=problem.norm_v,
            norm_dv=problem.norm_delta_v,
            seconds=round(seconds, 5),
            feasible=solution.is_feasible(),
        )
    # Fitted growth exponent between smallest and largest instance.
    (v0, t0), (v1, t1) = timings[0], timings[-1]
    exponent = (
        math.log(max(t1, 1e-9) / max(t0, 1e-9)) / math.log(v1 / v0)
        if v1 > v0
        else 0.0
    )
    polynomial = exponent <= 4.5  # Prop. 1's envelope is degree 4
    return result.finish(
        polynomial,
        f"fitted growth exponent {exponent:.2f} ≤ 4 (+slack): within the "
        "Proposition 1 polynomial envelope",
    )


# ----------------------------------------------------------------------
# E9 — Theorem 2 / Lemma 1: balanced version
# ----------------------------------------------------------------------


def e9_lemma1_balanced(seed: int = 29, trials: int = 6) -> ExperimentResult:
    result = ExperimentResult(
        "E9",
        "Theorem 2 reduction + Lemma 1 balanced approximation",
        "PN-PSC cost equals balanced deletion-propagation cost under the "
        "Theorem 2 construction; the Lemma 1 pipeline stays within "
        "2·sqrt(l·(‖V‖+‖ΔV‖)·log‖ΔV‖) of the optimum.",
    )
    rng = random.Random(seed)
    all_ok = True
    for t in range(trials):
        posneg = random_posneg(
            rng,
            num_positives=rng.randint(2, 4),
            num_negatives=rng.randint(3, 5),
            num_sets=rng.randint(4, 6),
        )
        _, pn_opt = solve_posneg_exact(posneg)
        reduction = posneg_to_balanced_vse(posneg)
        problem = reduction.problem
        balanced_opt = solve_exact_bruteforce(problem).balanced_cost()
        approx = solve_balanced(problem)
        bound = lemma1_bound(problem)
        ratio = (
            approx.balanced_cost() / balanced_opt if balanced_opt > 0 else 1.0
        )
        cost_equal = abs(pn_opt - balanced_opt) < 1e-9
        within = balanced_opt == 0.0 or ratio <= bound
        all_ok &= cost_equal and within
        result.add_row(
            trial=t,
            pn_opt=pn_opt,
            balanced_opt=balanced_opt,
            equal=cost_equal,
            approx=approx.balanced_cost(),
            ratio=round(ratio, 3),
            bound=round(bound, 2),
            within=within,
        )
    return result.finish(
        all_ok, "cost preservation and the Lemma 1 ratio hold on all trials"
    )


# ----------------------------------------------------------------------
# E10 — Tables II–V regeneration
# ----------------------------------------------------------------------


def _representatives() -> dict[str, tuple]:
    """Representative (queries, fds) per predicate-bearing table row."""
    project_free = parse_query("Qa(x, y, z) :- T1(x, y), T2(y, z)")
    key_preserving = parse_query("Qb(y1, y2, w) :- T1(y1, x), T2(y2, w)")
    non_kp = parse_query("Qc(z) :- T1(y, z), T2(z, w)")
    head_dom = parse_query("Qd(y) :- T1(y, x), T2(x, 'c')")
    non_head_dom = parse_query("Qe(y1, y2) :- T1(y1, x), T2(x, y2)")
    triangle = parse_query("Qf(x, y, z) :- R(x, y), S(y, z), T(z, x)")
    chain = parse_query("Qg(x, z) :- R(x, y), S(y, z)")
    project_free_two = parse_query("Qh(u, v, w) :- T1(u, v), T2(v, w)")
    fd = FunctionalDependency("T2", lhs=[1], rhs=[0])
    return {
        "project-free & sj-free": ([project_free], ()),
        "key-preserving": ([key_preserving], ()),
        "non-key-preserving": ([non_kp], ()),
        "head-domination": ([head_dom], ()),
        "non-head-domination": ([non_head_dom], ()),
        "fd-head-domination": ([non_head_dom], (fd,)),
        "triad": ([triangle], ()),
        "triad-free": ([chain], ()),
        "two project-free": ([project_free, project_free_two], ()),
    }


def e10_complexity_tables() -> ExperimentResult:
    result = ExperimentResult(
        "E10",
        "Tables II–V: complexity landscape regeneration",
        "Each predicate-bearing row of Tables II–V (and the paper's new "
        "results) is regenerated by classifying a representative query.",
    )
    reps = _representatives()
    checks = [
        # (row set, row index, representative, expected predicate value)
        (TABLE_II, 0, "project-free & sj-free", True),
        (TABLE_II, 1, "key-preserving", True),
        (TABLE_II, 2, "triad-free", True),
        (TABLE_II, 2, "triad", False),
        (TABLE_III, 1, "non-key-preserving", True),
        (TABLE_III, 1, "key-preserving", False),
        (TABLE_III, 2, "triad", True),
        (TABLE_III, 2, "triad-free", False),
        (TABLE_IV, 1, "key-preserving", True),
        (TABLE_IV, 2, "head-domination", True),
        (TABLE_IV, 2, "non-head-domination", False),
        (TABLE_IV, 3, "fd-head-domination", True),
        (TABLE_V, 1, "non-key-preserving", True),
        (TABLE_V, 2, "non-head-domination", True),
        (TABLE_V, 2, "head-domination", False),
        (PAPER_RESULTS, 0, "two project-free", True),
        (PAPER_RESULTS, 1, "key-preserving", True),
    ]
    from repro.relational.analysis import query_set_flags

    all_ok = True
    # One shared structural scan per representative; every row
    # predicate is then a dictionary lookup over its flags.
    flag_cache = {
        name: query_set_flags(queries, fds)
        for name, (queries, fds) in reps.items()
    }
    for rows, index, rep_name, expected in checks:
        row = rows[index]
        measured = bool(row.predicate(flag_cache[rep_name]))
        ok = measured == expected
        all_ok &= ok
        result.add_row(
            table=row.table,
            query_class=row.query_class[:48],
            complexity=row.complexity[:40],
            representative=rep_name,
            expected=expected,
            measured=measured,
            ok=ok,
        )
    return result.finish(
        all_ok, "every checked table row classifies its representative "
        "correctly"
    )


# ----------------------------------------------------------------------
# E11 — Section V applications
# ----------------------------------------------------------------------


def e11_applications(seed: int = 31) -> ExperimentResult:
    from repro.apps import AnnotationPropagator, DirtyOracle, QueryOrientedCleaner

    result = ExperimentResult(
        "E11",
        "Section V applications: cleaning + annotation",
        "Batch feedback processing (enabled by the multi-query "
        "guarantees) does not exceed sequential processing in collateral "
        "damage; merging evidence across queries shrinks the annotation "
        "candidate set.",
    )
    rng = random.Random(seed)
    batch_wins = 0
    trials = 5
    for t in range(trials):
        problem = random_star_problem(
            rng,
            num_leaves=3,
            center_facts=3,
            leaf_facts=5,
            num_queries=3,
            delta_fraction=0.0,
        )
        facts = sorted(problem.instance.facts())
        dirty = frozenset(rng.sample(facts, max(1, len(facts) // 8)))
        oracle = DirtyOracle(dirty)
        cleaner = QueryOrientedCleaner(
            problem.instance, problem.queries, oracle
        )
        batch = cleaner.clean_batch()
        sequential = cleaner.clean_sequential()
        if batch.collateral_view_tuples <= sequential.collateral_view_tuples:
            batch_wins += 1
        result.add_row(
            trial=t,
            feedback=batch.feedback_size,
            batch_collateral=batch.collateral_view_tuples,
            seq_collateral=sequential.collateral_view_tuples,
            batch_recall=round(batch.recall, 2),
            seq_recall=round(sequential.recall, 2),
        )
    # Annotation shrinkage on the Fig. 1 data: one error seen through
    # two queries narrows the top candidates.
    from repro.workloads import figure1_instance, figure1_queries, figure1_schema

    schema = figure1_schema()
    propagator = AnnotationPropagator(
        figure1_instance(schema), list(figure1_queries(schema))
    )
    curve = propagator.shrinkage_curve(
        {
            "Q3": [("John", "XML")],
            "Q4": [("John", "TKDE", "XML"), ("John", "TODS", "XML")],
        }
    )
    for views_used, strongest in curve:
        result.add_row(
            trial=f"annotation-{views_used}",
            feedback=views_used,
            batch_collateral="-",
            seq_collateral="-",
            batch_recall="-",
            seq_recall=strongest,
        )
    shrinks = curve[-1][1] <= curve[0][1]
    ok = batch_wins == trials and shrinks
    return result.finish(
        ok,
        f"batch ≤ sequential collateral on {batch_wins}/{trials} runs; "
        "annotation candidates do not widen as views accumulate",
    )


# ----------------------------------------------------------------------
# E12 — extensions beyond the paper (DESIGN.md §5)
# ----------------------------------------------------------------------


def e12_extensions(seed: int = 37, trials: int = 6) -> ExperimentResult:
    """Validate the extension algorithms' guarantees: LP rounding within
    l², randomized rounding feasible and never below the optimum, local
    search never worse than its input, and incremental maintenance
    agreeing with re-evaluation."""
    from repro.core import (
        improve,
        lp_rounding_bound,
        solve_lp_rounding,
        solve_randomized_rounding,
    )
    from repro.relational import MaintainedViewSet, result_tuples
    from repro.workloads import random_forest_problem

    result = ExperimentResult(
        "E12",
        "Extensions: LP rounding, randomized rounding, local search, IVM",
        "LP rounding is feasible within l² of OPT on any key-preserving "
        "instance; randomized rounding + repair is always feasible; the "
        "local-search pass never increases cost; counting-maintained "
        "views agree with from-scratch evaluation.",
    )
    rng = random.Random(seed)
    all_ok = True
    for t in range(trials):
        problem = random_forest_problem(
            rng,
            num_relations=rng.randint(3, 5),
            facts_per_relation=rng.randint(3, 6),
            num_queries=rng.randint(2, 4),
        )
        optimum = solve_exact(problem)
        opt = optimum.side_effect()
        deterministic = solve_lp_rounding(problem)
        randomized = solve_randomized_rounding(
            problem, random.Random(seed + t)
        )
        polished = improve(deterministic)
        det_ok = deterministic.is_feasible() and (
            opt == 0.0 or deterministic.side_effect() / opt
            <= lp_rounding_bound(problem) + 1e-9
        )
        rand_ok = (
            randomized.is_feasible()
            and randomized.side_effect() + 1e-9 >= opt
        )
        ls_ok = polished.side_effect() <= deterministic.side_effect() + 1e-9
        # IVM agreement: apply the optimum's deletions incrementally.
        views = MaintainedViewSet(problem.queries, problem.instance)
        views.delete_facts(sorted(optimum.deleted_facts))
        remaining = problem.instance.without(optimum.deleted_facts)
        ivm_ok = all(
            views.view(q.name).tuples() == result_tuples(q, remaining)
            for q in problem.queries
        )
        all_ok &= det_ok and rand_ok and ls_ok and ivm_ok
        result.add_row(
            trial=t,
            opt=opt,
            lp_rounding=deterministic.side_effect(),
            randomized=randomized.side_effect(),
            polished=polished.side_effect(),
            l2_bound=round(lp_rounding_bound(problem), 1),
            checks_ok=det_ok and rand_ok and ls_ok and ivm_ok,
        )
    return result.finish(
        all_ok, "every extension guarantee held on all trials"
    )


def all_experiments() -> list[ExperimentResult]:
    """Run every experiment once (used by the EXPERIMENTS.md generator)."""
    return [
        e1_fig1_example(),
        e2_theorem1_reduction(),
        e3_fig3_hypergraphs(),
        e4_claim1_ratio(),
        e5_theorem3_ratio(),
        e6_theorem4_ratio(),
        e7_alg4_exactness(),
        e8_prop1_scaling(),
        e9_lemma1_balanced(),
        e10_complexity_tables(),
        e11_applications(),
        e12_extensions(),
    ]
