"""Plain-text reporting for the experiment harness.

ASCII tables in the style of the paper's presentation, plus a renderer
for :class:`~repro.bench.harness.ExperimentResult` used both by the
``benchmarks/`` scripts and by the EXPERIMENTS.md regenerator.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_experiment"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value == value else "nan"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Iterable[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0])
    widths = {c: len(c) for c in cols}
    rendered: list[dict[str, str]] = []
    for row in rows:
        out = {c: _cell(row.get(c, "")) for c in cols}
        rendered.append(out)
        for c in cols:
            widths[c] = max(widths[c], len(out[c]))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(widths[c]) for c in cols)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in cols))
    for out in rendered:
        lines.append(" | ".join(out[c].ljust(widths[c]) for c in cols))
    return "\n".join(lines)


def format_experiment(result) -> str:
    """Render an ExperimentResult: header, claim, table, verdict."""
    lines = [
        f"=== {result.experiment_id}: {result.title} ===",
        f"paper: {result.paper_claim}",
        "",
        format_table(result.rows, columns=result.columns),
        "",
        f"verdict: {'PASS' if result.passed else 'FAIL'} — {result.conclusion}",
    ]
    return "\n".join(lines)
