"""EXPERIMENTS.md generation.

Runs every reproduction experiment and renders a markdown report with,
per paper artifact, the paper's claim, the measured rows, and the
verdict.  ``python -m repro.bench.markdown`` regenerates the file at
the repository root (or pass an explicit path).
"""

from __future__ import annotations

import sys
from datetime import date

from repro.bench.experiments import all_experiments
from repro.bench.harness import ExperimentResult

__all__ = ["render_markdown", "write_experiments_md"]

_HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction record for *Deletion Propagation for Multiple Key
Preserving Conjunctive Queries: Approximations and Complexity*
(Cai, Miao, Li — ICDE 2019).  One section per paper artifact; every
section states the paper's claim, the measured reproduction, and a
verdict.  Regenerate with `python -m repro.bench.markdown` (the same
experiments run under `pytest benchmarks/ --benchmark-only`).

The paper is a theory paper: its "numbers" are worked examples,
reduction constructions, classifications, and proven approximation
ratios.  Measured ratios below are therefore compared against the
*proven bounds* (they must not exceed them) and against the exact
optimum computed by this library's exact solvers; absolute runtimes are
laptop-scale and only the growth shape matters (E8).
"""


def _table(result: ExperimentResult) -> list[str]:
    if not result.rows:
        return ["(no rows)"]
    columns = list(result.columns) if result.columns else list(result.rows[0])
    lines = [
        "| " + " | ".join(str(c) for c in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in result.rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                cells.append(f"{value:.3f}".rstrip("0").rstrip("."))
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return lines


def render_markdown(results: list[ExperimentResult] | None = None) -> str:
    """Render the full EXPERIMENTS.md text."""
    if results is None:
        results = all_experiments()
    lines = [_HEADER]
    lines.append(f"_Last regenerated: {date.today().isoformat()}._\n")
    lines.append("## Summary\n")
    lines.append("| experiment | artifact | verdict |")
    lines.append("| --- | --- | --- |")
    for result in results:
        verdict = "PASS" if result.passed else "FAIL"
        lines.append(
            f"| {result.experiment_id} | {result.title} | {verdict} |"
        )
    lines.append("")
    for result in results:
        lines.append(f"## {result.experiment_id} — {result.title}\n")
        lines.append(f"**Paper:** {result.paper_claim}\n")
        lines.append("**Measured:**\n")
        lines.extend(_table(result))
        verdict = "PASS" if result.passed else "FAIL"
        lines.append(f"\n**Verdict:** {verdict} — {result.conclusion}\n")
    return "\n".join(lines) + "\n"


def write_experiments_md(path: str = "EXPERIMENTS.md") -> str:
    """Run all experiments and write the markdown report to ``path``."""
    text = render_markdown()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    print(f"wrote {write_experiments_md(target)}")
