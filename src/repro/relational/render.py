"""ASCII rendering of instances, views, and query sets.

Used by the examples and the CLI to show data the way the paper's
Fig. 1 does: one aligned table per relation/view, key columns starred.
"""

from __future__ import annotations

from typing import Iterable

from repro.relational.cq import ConjunctiveQuery
from repro.relational.instance import Instance
from repro.relational.views import View

__all__ = ["render_relation", "render_instance", "render_view", "render_queries"]


def _render_rows(
    title: str, header: list[str], rows: list[list[str]]
) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    if not rows:
        lines.append("(empty)")
    return "\n".join(lines)


def render_relation(instance: Instance, name: str) -> str:
    """One relation as an aligned table; key attributes are starred."""
    rel = instance.schema.relation(name)
    header = [
        f"*{attr}" if i in rel.key else attr
        for i, attr in enumerate(rel.attributes)
    ]
    rows = [
        [str(v) for v in fact.values]
        for fact in sorted(instance.relation(name))
    ]
    return _render_rows(str(rel), header, rows)


def render_instance(instance: Instance) -> str:
    """Every relation of the instance, Fig. 1-style."""
    blocks = [
        render_relation(instance, rel.name) for rel in instance.schema
    ]
    return "\n\n".join(blocks)


def render_view(view: View) -> str:
    """A materialized view as an aligned table."""
    header = []
    for i, term in enumerate(view.query.head):
        header.append(getattr(term, "name", f"c{i}"))
    rows = [[str(v) for v in values] for values in sorted(view.tuples, key=repr)]
    title = f"{view.name} = {view.query!r}"
    return _render_rows(title, header, rows)


def render_queries(queries: Iterable[ConjunctiveQuery]) -> str:
    """Query definitions with their syntactic classes."""
    lines = []
    for query in queries:
        tags = []
        if query.is_project_free():
            tags.append("project-free")
        if query.is_self_join_free():
            tags.append("sj-free")
        if query.is_key_preserving():
            tags.append("key-preserving")
        lines.append(f"{query!r}   [{', '.join(tags) or 'none'}]")
    return "\n".join(lines)
