"""Conjunctive query evaluation.

A small but real evaluation engine: backtracking join with greedy
bound-variable atom ordering and per-(relation, positions) hash indexes.
It enumerates *matches* (the paper's assignments ``μ`` that map every atom
to a fact of the instance) and materializes query results.

The engine is deliberately index-driven rather than nested-loop: for every
atom it looks up only the facts compatible with the values bound so far,
which keeps evaluation polynomial per match and makes the benches on
thousands of facts practical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.relational.cq import Atom, ConjunctiveQuery, Constant, Variable
from repro.relational.instance import Instance
from repro.relational.tuples import Fact

__all__ = [
    "Match",
    "evaluate",
    "iter_matches",
    "iter_matches_pinned",
    "result_tuples",
]


@dataclass(frozen=True)
class Match:
    """One assignment ``μ`` for a query in an instance.

    Attributes
    ----------
    assignment:
        Mapping of every body variable to a constant.
    witness:
        The facts ``μ(Ti)``, one per body atom, in body order.  For
        key-preserving queries this is the unique why-provenance of the
        produced view tuple.
    head:
        The view tuple ``μ(y)`` produced by this match.
    """

    assignment: Mapping[Variable, object]
    witness: tuple[Fact, ...]
    head: tuple

    def witness_set(self) -> frozenset[Fact]:
        return frozenset(self.witness)


class _AtomIndex:
    """Hash index of one relation's facts on a subset of positions.

    Built lazily per (relation, positions) pair during evaluation and
    cached on the evaluator, so repeated evaluations of similar queries
    share nothing but recompute cheaply.
    """

    def __init__(self, facts: frozenset[Fact], positions: tuple[int, ...]):
        self.positions = positions
        self._buckets: dict[tuple, list[Fact]] = {}
        for fact in facts:
            key = tuple(fact.values[p] for p in positions)
            self._buckets.setdefault(key, []).append(fact)

    def lookup(self, key: tuple) -> list[Fact]:
        return self._buckets.get(key, [])


class _Evaluator:
    def __init__(self, query: ConjunctiveQuery, instance: Instance):
        self.query = query
        self.instance = instance
        self._index_cache: dict[tuple[str, tuple[int, ...]], _AtomIndex] = {}
        # Sorted fact lists per relation for fully-unbound atom lookups;
        # computed once per evaluator instead of re-sorting the relation
        # on every backtracking visit.
        self._sorted_cache: dict[str, list[Fact]] = {}

    # ------------------------------------------------------------------

    def matches(self) -> Iterator[Match]:
        order = self._atom_order()
        assignment: dict[Variable, object] = {}
        witness_by_pos: dict[int, Fact] = {}
        yield from self._search(order, 0, assignment, witness_by_pos)

    def _search(
        self,
        order: list[int],
        depth: int,
        assignment: dict[Variable, object],
        witness_by_pos: dict[int, Fact],
    ) -> Iterator[Match]:
        if depth == len(order):
            witness = tuple(
                witness_by_pos[i] for i in range(len(self.query.body))
            )
            head = self.query.substitute_head(assignment)
            yield Match(dict(assignment), witness, head)
            return
        atom_pos = order[depth]
        atom = self.query.body[atom_pos]
        for fact in self._candidate_facts(atom, assignment):
            newly_bound = self._try_bind(atom, fact, assignment)
            if newly_bound is None:
                continue
            witness_by_pos[atom_pos] = fact
            yield from self._search(order, depth + 1, assignment, witness_by_pos)
            del witness_by_pos[atom_pos]
            for var in newly_bound:
                del assignment[var]

    # ------------------------------------------------------------------

    def _atom_order(self) -> list[int]:
        """Greedy join order: repeatedly pick the atom sharing the most
        variables with those already bound (ties: smaller relation)."""
        remaining = list(range(len(self.query.body)))
        bound: set[Variable] = set()
        order: list[int] = []
        sizes = self.instance.relation_sizes()
        while remaining:

            def score(i: int) -> tuple[int, int]:
                atom = self.query.body[i]
                shared = len(atom.variable_set() & bound)
                return (-shared, sizes.get(atom.relation, 0))

            best = min(remaining, key=score)
            remaining.remove(best)
            order.append(best)
            bound.update(self.query.body[best].variable_set())
        return order

    def _candidate_facts(
        self, atom: Atom, assignment: Mapping[Variable, object]
    ) -> list[Fact]:
        bound_positions: list[int] = []
        bound_values: list[object] = []
        for pos, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                bound_positions.append(pos)
                bound_values.append(term.value)
            elif term in assignment:
                bound_positions.append(pos)
                bound_values.append(assignment[term])
        positions = tuple(bound_positions)
        if not positions:
            cached = self._sorted_cache.get(atom.relation)
            if cached is None:
                cached = sorted(self.instance.relation(atom.relation))
                self._sorted_cache[atom.relation] = cached
            return cached
        index_key = (atom.relation, positions)
        index = self._index_cache.get(index_key)
        if index is None:
            index = _AtomIndex(self.instance.relation(atom.relation), positions)
            self._index_cache[index_key] = index
        return index.lookup(tuple(bound_values))

    @staticmethod
    def _try_bind(
        atom: Atom, fact: Fact, assignment: dict[Variable, object]
    ) -> list[Variable] | None:
        """Extend ``assignment`` so that ``μ(atom) = fact``.  Returns the
        variables newly bound, or ``None`` on conflict (assignment is
        left unchanged in that case)."""
        newly_bound: list[Variable] = []
        for term, value in zip(atom.terms, fact.values):
            if isinstance(term, Constant):
                if term.value != value:
                    for var in newly_bound:
                        del assignment[var]
                    return None
            else:
                seen = assignment.get(term, _UNSET)
                if seen is _UNSET:
                    assignment[term] = value
                    newly_bound.append(term)
                elif seen != value:
                    for var in newly_bound:
                        del assignment[var]
                    return None
        return newly_bound


_UNSET = object()


def iter_matches(query: ConjunctiveQuery, instance: Instance) -> Iterator[Match]:
    """Enumerate all matches of ``query`` in ``instance``."""
    return _Evaluator(query, instance).matches()


def iter_matches_pinned(
    query: ConjunctiveQuery,
    instance: Instance,
    atom_index: int,
    fact: Fact,
) -> Iterator[Match]:
    """Enumerate the matches whose ``atom_index``-th atom maps to
    ``fact`` — the delta-evaluation primitive behind incremental view
    maintenance: the new matches caused by inserting ``fact`` are the
    pinned matches over the post-insertion instance (union over the
    atoms of the fact's relation)."""
    atom = query.body[atom_index]
    if atom.relation != fact.relation:
        return
    evaluator = _Evaluator(query, instance)
    assignment: dict[Variable, object] = {}
    bound = _Evaluator._try_bind(atom, fact, assignment)
    if bound is None:
        return
    order = [i for i in range(len(query.body)) if i != atom_index]
    # Greedy reorder: atoms sharing bound variables first.
    order.sort(
        key=lambda i: -len(
            query.body[i].variable_set() & set(assignment)
        )
    )
    witness_by_pos = {atom_index: fact}
    yield from evaluator._search(order, 0, assignment, witness_by_pos)


def evaluate(query: ConjunctiveQuery, instance: Instance) -> list[Match]:
    """All matches as a list (deterministic order)."""
    return list(iter_matches(query, instance))


def result_tuples(query: ConjunctiveQuery, instance: Instance) -> set[tuple]:
    """The query result ``Q(D)``: the set of head tuples over all
    matches.  Distinct matches may produce the same head tuple when the
    query projects (has existential variables)."""
    return {match.head for match in iter_matches(query, instance)}
