"""Database instances with primary-key enforcement.

An :class:`Instance` stores, per relation, a set of :class:`~repro.relational.tuples.Fact`
objects and an index from key values to the (unique) fact holding them.
The key index is what makes key-preserving deletion propagation efficient:
given the key values exposed in a view tuple's head, the witness fact is a
single dictionary lookup (Section II.C of the paper: *"finding the
occurrences of key values of the deleted relation tuples in the view"*).

Instances support the set algebra used throughout the paper:
``D \\ ΔD`` (:meth:`Instance.without`), sub-instance tests, and copies.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import InstanceError, SchemaError
from repro.relational.schema import RelationSchema, Schema
from repro.relational.tuples import Fact

__all__ = ["Instance"]


class Instance:
    """A database instance ``D`` over a :class:`~repro.relational.schema.Schema`.

    Facts are validated on insertion: arity must match the relation schema
    and no two facts may share key values (primary-key enforcement).
    """

    def __init__(self, schema: Schema, facts: Iterable[Fact] = ()):
        self._schema = schema
        self._facts: dict[str, set[Fact]] = {r.name: set() for r in schema}
        self._key_index: dict[str, dict[tuple[object, ...], Fact]] = {
            r.name: {} for r in schema
        }
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls, schema: Schema, rows: Mapping[str, Iterable[Iterable[object]]]
    ) -> "Instance":
        """Build an instance from ``{relation: [row, ...]}``.

        >>> inst = Instance.from_rows(schema, {"T1": [("a", 1), ("b", 2)]})
        """
        instance = cls(schema)
        for relation, relation_rows in rows.items():
            for row in relation_rows:
                instance.add(Fact(relation, row))
        return instance

    @classmethod
    def from_trusted_facts(
        cls, schema: Schema, facts: Iterable[Fact]
    ) -> "Instance":
        """Bulk-load facts already known valid — right arity, no key
        collisions — skipping the per-fact :meth:`add` checks.

        This is the shared-memory attach path
        (:mod:`repro.core.shm`): the exporting process validated the
        facts when it built the instance, so attachers only rebuild the
        sets and key indexes.  Do **not** feed unvalidated data here; a
        key collision silently keeps the last fact.
        """
        instance = cls.__new__(cls)
        instance._schema = schema
        instance._facts = {r.name: set() for r in schema}
        instance._key_index = {r.name: {} for r in schema}
        buckets = instance._facts
        indexes = instance._key_index
        relation: str | None = None
        key_positions: tuple[int, ...] = ()
        for fact in facts:
            if fact.relation != relation:
                relation = fact.relation
                if relation not in buckets:
                    raise SchemaError(f"unknown relation {relation!r}")
                key_positions = schema.relation(relation).key.positions
            values = fact.values
            buckets[relation].add(fact)
            indexes[relation][
                tuple(values[p] for p in key_positions)
            ] = fact
        return instance

    @property
    def schema(self) -> Schema:
        return self._schema

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, fact: Fact) -> None:
        """Insert ``fact``, enforcing arity and primary key."""
        rel = self._relation_schema(fact.relation)
        if fact.arity != rel.arity:
            raise InstanceError(
                f"fact {fact!r} has arity {fact.arity}, relation "
                f"{rel.name!r} expects {rel.arity}"
            )
        key = fact.key_values(rel)
        existing = self._key_index[rel.name].get(key)
        if existing is not None:
            if existing == fact:
                return  # idempotent re-insert of the same fact
            raise InstanceError(
                f"primary-key violation in {rel.name!r}: {fact!r} collides "
                f"with {existing!r} on key {key!r}"
            )
        self._facts[rel.name].add(fact)
        self._key_index[rel.name][key] = fact

    def remove(self, fact: Fact) -> None:
        """Delete ``fact``; raise :class:`InstanceError` if absent."""
        rel = self._relation_schema(fact.relation)
        if fact not in self._facts[rel.name]:
            raise InstanceError(f"cannot remove absent fact {fact!r}")
        self._facts[rel.name].discard(fact)
        del self._key_index[rel.name][fact.key_values(rel)]

    def discard(self, fact: Fact) -> bool:
        """Delete ``fact`` if present; return whether it was present."""
        if fact in self:
            self.remove(fact)
            return True
        return False

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def relation(self, name: str) -> frozenset[Fact]:
        """The facts of relation ``name`` as a frozen set."""
        if name not in self._facts:
            raise SchemaError(f"unknown relation {name!r}")
        return frozenset(self._facts[name])

    def lookup_by_key(
        self, relation: str, key_values: tuple[object, ...]
    ) -> Fact | None:
        """Return the unique fact of ``relation`` with the given key
        values, or ``None``.  This is the O(1) witness lookup that the
        key-preserving property enables."""
        if relation not in self._key_index:
            raise SchemaError(f"unknown relation {relation!r}")
        return self._key_index[relation].get(tuple(key_values))

    def __contains__(self, fact: Fact) -> bool:
        facts = self._facts.get(fact.relation)
        return facts is not None and fact in facts

    def __iter__(self) -> Iterator[Fact]:
        for name in self._facts:
            yield from sorted(self._facts[name])

    def __len__(self) -> int:
        return sum(len(facts) for facts in self._facts.values())

    def relation_sizes(self) -> dict[str, int]:
        return {name: len(facts) for name, facts in self._facts.items()}

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------

    def without(self, deleted: Iterable[Fact]) -> "Instance":
        """Return a new instance ``D \\ ΔD`` (self is unchanged).

        Facts in ``deleted`` that are not present are ignored, mirroring
        set difference semantics.
        """
        deleted_set = set(deleted)
        result = Instance(self._schema)
        for fact in self:
            if fact not in deleted_set:
                result.add(fact)
        return result

    def copy(self) -> "Instance":
        return self.without(())

    def issubinstance(self, other: "Instance") -> bool:
        """True iff every fact of ``self`` is a fact of ``other``
        (``D0 ⊆ D`` in the paper)."""
        return all(fact in other for fact in self)

    def facts(self) -> frozenset[Fact]:
        """All facts of the instance as one frozen set."""
        return frozenset(f for facts in self._facts.values() for f in facts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._schema == other._schema and self._facts == other._facts

    def __repr__(self) -> str:
        sizes = ", ".join(f"{n}:{len(f)}" for n, f in self._facts.items())
        return f"Instance({sizes})"

    # ------------------------------------------------------------------

    def _relation_schema(self, name: str) -> RelationSchema:
        if name not in self._schema:
            raise SchemaError(f"unknown relation {name!r}")
        return self._schema.relation(name)
