"""Materialized views, view sets, and view deletions (ΔV).

A :class:`View` is a materialized query result ``Q(D)`` together with the
query that produced it; a :class:`ViewSet` is the paper's ``V``; a
:class:`Deletion` is the paper's ``ΔV``.  View tuples are addressed by
:class:`ViewTuple` (view name + values), carry optional user weights (the
paper's weighted variant, Section IV), and know their witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import ViewError
from repro.relational.cq import ConjunctiveQuery
from repro.relational.instance import Instance
from repro.relational.provenance import unique_witness_map, witness_map
from repro.relational.tuples import Fact

__all__ = ["ViewTuple", "View", "ViewSet", "Deletion"]


@dataclass(frozen=True)
class ViewTuple:
    """A single view tuple, identified by the view it belongs to."""

    view: str
    values: tuple

    def __init__(self, view: str, values: Iterable[object]):
        object.__setattr__(self, "view", view)
        object.__setattr__(self, "values", tuple(values))

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.view}[{inner}]"

    def __lt__(self, other: "ViewTuple") -> bool:
        if not isinstance(other, ViewTuple):
            return NotImplemented
        if self.view != other.view:
            return self.view < other.view
        try:
            return self.values < other.values
        except TypeError:
            return repr(self.values) < repr(other.values)


class View:
    """A materialized view ``V = Q(D)``.

    The view stores its tuples and, when the query is key preserving, the
    unique witness of every tuple.  Non-key-preserving queries are still
    supported for the analysis/classification modules (all witnesses are
    kept), but the paper's algorithms require key preservation.
    """

    def __init__(self, query: ConjunctiveQuery, instance: Instance):
        self.query = query
        self.name = query.name
        if query.is_key_preserving():
            unique = unique_witness_map(query, instance)
            self._witnesses: dict[tuple, list[frozenset[Fact]]] = {
                head: [w] for head, w in unique.items()
            }
        else:
            self._witnesses = witness_map(query, instance)
        self._tuples: frozenset[tuple] = frozenset(self._witnesses)

    @classmethod
    def from_witnesses(
        cls,
        query: ConjunctiveQuery,
        witnesses: Mapping[tuple, Iterable[frozenset[Fact]]],
    ) -> "View":
        """A view from an *already materialized* witness map, skipping
        query evaluation entirely.

        This is the shared-memory attach path
        (:mod:`repro.core.shm`): the exporting process evaluated the
        queries once, shipped the witness structure as flat arrays, and
        attaching processes rebuild the object surface from it.  The
        caller is responsible for ``witnesses`` actually being
        ``Q(D)`` — the differential suites cover that contract.
        """
        view = cls.__new__(cls)
        view.query = query
        view.name = query.name
        view._witnesses = {
            tuple(head): list(wits) for head, wits in witnesses.items()
        }
        view._tuples = frozenset(view._witnesses)
        return view

    @property
    def tuples(self) -> frozenset[tuple]:
        """The raw value tuples of the view."""
        return self._tuples

    def view_tuples(self) -> list[ViewTuple]:
        """All tuples wrapped as :class:`ViewTuple`, sorted."""
        return sorted(ViewTuple(self.name, values) for values in self._tuples)

    def __contains__(self, values: tuple) -> bool:
        return tuple(values) in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    @property
    def width(self) -> int:
        """Width of the view = ``arity(Q)`` (paper Section II.B)."""
        return self.query.arity

    def witnesses_of(self, values: tuple) -> list[frozenset[Fact]]:
        """All witnesses of one view tuple."""
        try:
            return list(self._witnesses[tuple(values)])
        except KeyError:
            raise ViewError(
                f"{tuple(values)!r} is not a tuple of view {self.name!r}"
            ) from None

    def witness_of(self, values: tuple) -> frozenset[Fact]:
        """The unique witness (key-preserving queries)."""
        witnesses = self.witnesses_of(values)
        if len(witnesses) != 1:
            raise ViewError(
                f"view tuple {tuple(values)!r} of {self.name!r} has "
                f"{len(witnesses)} witnesses; expected exactly one"
            )
        return witnesses[0]

    def __repr__(self) -> str:
        return f"View({self.name}, {len(self)} tuples)"


class ViewSet:
    """The paper's ``V = {V1..Vm}``: one view per query, unique names."""

    def __init__(self, views: Iterable[View]):
        self._views: dict[str, View] = {}
        for view in views:
            if view.name in self._views:
                raise ViewError(f"duplicate view name {view.name!r}")
            self._views[view.name] = view
        if not self._views:
            raise ViewError("a view set must contain at least one view")

    @classmethod
    def materialize(
        cls, queries: Iterable[ConjunctiveQuery], instance: Instance
    ) -> "ViewSet":
        """Materialize ``Qi(D)`` for every query."""
        return cls(View(q, instance) for q in queries)

    def view(self, name: str) -> View:
        try:
            return self._views[name]
        except KeyError:
            raise ViewError(f"unknown view {name!r}") from None

    def __iter__(self) -> Iterator[View]:
        return iter(self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._views)

    def total_size(self) -> int:
        """``‖V‖``: the total number of view tuples across all views."""
        return sum(len(v) for v in self._views.values())

    def max_arity(self) -> int:
        """``l``: the maximum ``arity(Q)`` among the queries."""
        return max(v.width for v in self._views.values())

    def all_view_tuples(self) -> list[ViewTuple]:
        out: list[ViewTuple] = []
        for view in self:
            out.extend(view.view_tuples())
        return sorted(out)

    def queries(self) -> list[ConjunctiveQuery]:
        return [v.query for v in self]

    def __repr__(self) -> str:
        inner = ", ".join(f"{v.name}:{len(v)}" for v in self)
        return f"ViewSet({inner})"


class Deletion:
    """The paper's ``ΔV``: per-view sets of tuples to remove.

    Validated against the view set: every requested tuple must actually be
    a view tuple.  Views without deletions may be omitted.
    """

    def __init__(
        self, views: ViewSet, deletions: Mapping[str, Iterable[tuple]]
    ):
        self._views = views
        self._deletions: dict[str, frozenset[tuple]] = {}
        for name, tuples in deletions.items():
            view = views.view(name)  # raises on unknown view
            requested = frozenset(tuple(t) for t in tuples)
            missing = requested - view.tuples
            if missing:
                raise ViewError(
                    f"deletion on view {name!r} includes non-view tuples: "
                    f"{sorted(map(repr, missing))[:3]}"
                )
            if requested:
                self._deletions[name] = requested

    @property
    def views(self) -> ViewSet:
        return self._views

    def on(self, view_name: str) -> frozenset[tuple]:
        """The deleted tuples of one view (empty set when none)."""
        return self._deletions.get(view_name, frozenset())

    def __contains__(self, vt: ViewTuple) -> bool:
        return vt.values in self._deletions.get(vt.view, frozenset())

    def total_size(self) -> int:
        """``‖ΔV‖``: the total number of deleted view tuples."""
        return sum(len(d) for d in self._deletions.values())

    def is_empty(self) -> bool:
        return not self._deletions

    def deleted_view_tuples(self) -> list[ViewTuple]:
        out = [
            ViewTuple(name, values)
            for name, tuples in self._deletions.items()
            for values in tuples
        ]
        return sorted(out)

    def preserved_view_tuples(self) -> list[ViewTuple]:
        """``R = {V1 \\ ΔV1, ...}``: the tuples that must survive."""
        out: list[ViewTuple] = []
        for view in self._views:
            deleted = self.on(view.name)
            out.extend(
                ViewTuple(view.name, values)
                for values in view.tuples
                if values not in deleted
            )
        return sorted(out)

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}:{len(t)}" for n, t in self._deletions.items())
        return f"Deletion({inner or 'empty'})"
