"""Conjunctive queries in datalog style.

Following Section II.B of the paper, a conjunctive query (CQ) is written

    Q(y1, ..., yk) :- T1(x1, y1, c1), ..., Tq(xq, yq, cq)

where the ``y`` are head variables, the ``x`` are existential variables
and the ``c`` are constants.  This module provides the term algebra
(:class:`Variable`, :class:`Constant`), atoms, and the
:class:`ConjunctiveQuery` object with the derived notions the paper uses:

* ``Var∃(Q)`` / ``Varh(Q)`` -- existential and head variables,
* ``arity(Q)`` -- the *width* of the query (length of the head),
* self-join freedom, projection freedom,
* key variables per atom and the **key-preserving** property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import QueryError
from repro.relational.schema import Schema

__all__ = ["Variable", "Constant", "Term", "Atom", "ConjunctiveQuery"]


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable (paper: lower-case letters from the end of the
    alphabet, e.g. ``x``, ``y``, ``z``)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("variable name must be non-empty")

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Constant:
    """A constant from ``Const`` embedded in a query atom."""

    value: object

    def __repr__(self) -> str:
        return repr(self.value)


Term = Variable | Constant


@dataclass(frozen=True)
class Atom:
    """One atom ``T(t1, ..., tn)`` of a CQ body.

    ``terms`` mixes variables and constants.  The positions that form the
    relation's key are taken from the schema at query construction.
    """

    relation: str
    terms: tuple[Term, ...]

    def __init__(self, relation: str, terms: Sequence[Term]):
        if not relation:
            raise QueryError("atom relation name must be non-empty")
        for term in terms:
            if not isinstance(term, (Variable, Constant)):
                raise QueryError(
                    f"atom term {term!r} is neither Variable nor Constant"
                )
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    @property
    def variables(self) -> tuple[Variable, ...]:
        """Variables in positional order (duplicates preserved)."""
        return tuple(t for t in self.terms if isinstance(t, Variable))

    def variable_set(self) -> frozenset[Variable]:
        return frozenset(self.variables)

    def terms_at(self, positions: Iterable[int]) -> tuple[Term, ...]:
        return tuple(self.terms[p] for p in positions)

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"


class ConjunctiveQuery:
    """A conjunctive query with a distinguished head.

    Parameters
    ----------
    name:
        Query name (``Q1``, ``Q2``, ...). Used for display and as the view
        identifier.
    head:
        The head terms.  The paper requires a non-empty head (every
        ``yi`` non-empty); constants are permitted in heads for generality
        but at least one head variable must exist.
    body:
        The atoms.  Every head variable must occur in the body (safety).
    schema:
        The schema the query is evaluated against; provides arities and
        keys for each atom's relation.
    """

    def __init__(
        self,
        name: str,
        head: Sequence[Term],
        body: Sequence[Atom],
        schema: Schema,
    ):
        if not name:
            raise QueryError("query name must be non-empty")
        if not head:
            raise QueryError(f"query {name!r} must have a non-empty head")
        if not body:
            raise QueryError(f"query {name!r} must have a non-empty body")
        self.name = name
        self.head: tuple[Term, ...] = tuple(head)
        self.body: tuple[Atom, ...] = tuple(body)
        self.schema = schema
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        body_vars = self.body_variables()
        head_vars = [t for t in self.head if isinstance(t, Variable)]
        if not head_vars:
            raise QueryError(
                f"query {self.name!r} has no head variables; the paper "
                "requires each head component to be non-empty"
            )
        for var in head_vars:
            if var not in body_vars:
                raise QueryError(
                    f"unsafe query {self.name!r}: head variable {var!r} "
                    "does not occur in the body"
                )
        for atom in self.body:
            rel = self.schema.relation(atom.relation)  # raises if unknown
            if atom.arity != rel.arity:
                raise QueryError(
                    f"atom {atom!r} of query {self.name!r} has arity "
                    f"{atom.arity}, relation expects {rel.arity}"
                )

    # ------------------------------------------------------------------
    # Variable classification (paper Section II.B)
    # ------------------------------------------------------------------

    def body_variables(self) -> frozenset[Variable]:
        """``Var(Q)``: all variables occurring in the body."""
        out: set[Variable] = set()
        for atom in self.body:
            out.update(atom.variables)
        return frozenset(out)

    def head_variables(self) -> frozenset[Variable]:
        """``Varh(Q)``: variables occurring in the head."""
        return frozenset(t for t in self.head if isinstance(t, Variable))

    def existential_variables(self) -> frozenset[Variable]:
        """``Var∃(Q)``: body variables not in the head."""
        return self.body_variables() - self.head_variables()

    @property
    def arity(self) -> int:
        """``arity(Q)``: the width of the query (= length of the head)."""
        return len(self.head)

    # ------------------------------------------------------------------
    # Syntactic classes (paper Sections II.B, III)
    # ------------------------------------------------------------------

    def is_project_free(self) -> bool:
        """True iff the query has no existential variables (select-join
        query).  Project-free CQs are always key preserving."""
        return not self.existential_variables()

    def is_self_join_free(self) -> bool:
        """True iff no relation symbol occurs twice in the body."""
        relations = [atom.relation for atom in self.body]
        return len(relations) == len(set(relations))

    def key_variables_of(self, atom: Atom) -> frozenset[Variable]:
        """Variables sitting at key positions of ``atom``."""
        rel = self.schema.relation(atom.relation)
        return frozenset(
            t for t in atom.terms_at(rel.key) if isinstance(t, Variable)
        )

    def key_variables(self) -> frozenset[Variable]:
        """Union of key variables across all atoms."""
        out: set[Variable] = set()
        for atom in self.body:
            out.update(self.key_variables_of(atom))
        return frozenset(out)

    def is_key_preserving(self) -> bool:
        """The paper's key-preserving property: (a) every atom's relation
        has a key (guaranteed by :class:`RelationSchema`), and (b) every
        key variable occurs in the head."""
        return self.key_variables() <= self.head_variables()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def relations(self) -> tuple[str, ...]:
        """Relation symbols in body order (duplicates preserved)."""
        return tuple(atom.relation for atom in self.body)

    def relation_set(self) -> frozenset[str]:
        return frozenset(self.relations())

    def head_positions_of(self, var: Variable) -> tuple[int, ...]:
        """Head positions at which ``var`` occurs."""
        return tuple(i for i, t in enumerate(self.head) if t == var)

    def atoms_containing(self, var: Variable) -> tuple[Atom, ...]:
        return tuple(a for a in self.body if var in a.variable_set())

    def substitute_head(self, assignment: Mapping[Variable, object]) -> tuple:
        """Apply an assignment ``μ`` to the head, producing the view tuple
        ``μ(y)`` (constants pass through)."""
        out = []
        for term in self.head:
            if isinstance(term, Variable):
                try:
                    out.append(assignment[term])
                except KeyError:
                    raise QueryError(
                        f"assignment does not bind head variable {term!r}"
                    ) from None
            else:
                out.append(term.value)
        return tuple(out)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.body)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self.name == other.name
            and self.head == other.head
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return hash((self.name, self.head, self.body))

    def __repr__(self) -> str:
        head = ", ".join(repr(t) for t in self.head)
        body = ", ".join(repr(a) for a in self.body)
        return f"{self.name}({head}) :- {body}"
