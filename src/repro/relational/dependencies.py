"""Functional dependencies over instances.

The fd-variants of the complexity landscape (fd-head domination,
fd-induced triads — Tables II–V) assume FDs that actually *hold* on the
data.  This module provides the instance-level side of that story:

* :func:`violations` / :func:`holds` — check a set of
  :class:`~repro.relational.analysis.FunctionalDependency` declarations
  against an :class:`~repro.relational.instance.Instance`.
* :func:`attribute_closure` — closure of a set of attribute positions
  under declared FDs of one relation (Armstrong's axioms, computed the
  usual fixpoint way).
* :func:`discover_fds` — mine all minimal single-attribute-RHS FDs that
  hold on a relation instance (exhaustive over LHS subsets; intended
  for the small instances of this library's experiments).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.errors import SchemaError
from repro.relational.analysis import FunctionalDependency
from repro.relational.instance import Instance

__all__ = [
    "violations",
    "holds",
    "attribute_closure",
    "discover_fds",
]


def violations(
    instance: Instance, fds: Sequence[FunctionalDependency]
) -> list[tuple[FunctionalDependency, tuple, tuple]]:
    """All FD violations: triples ``(fd, fact_a_values, fact_b_values)``
    where two facts agree on the LHS but differ on the RHS."""
    out: list[tuple[FunctionalDependency, tuple, tuple]] = []
    for fd in fds:
        if fd.relation not in instance.schema:
            raise SchemaError(f"unknown relation {fd.relation!r} in {fd!r}")
        arity = instance.schema.relation(fd.relation).arity
        for position in (*fd.lhs, *fd.rhs):
            if position >= arity:
                raise SchemaError(
                    f"position {position} out of range in {fd!r}"
                )
        seen: dict[tuple, tuple] = {}
        for fact in sorted(instance.relation(fd.relation)):
            lhs = tuple(fact.values[p] for p in fd.lhs)
            rhs = tuple(fact.values[p] for p in fd.rhs)
            if lhs in seen and seen[lhs] != rhs:
                witness = next(
                    f.values
                    for f in sorted(instance.relation(fd.relation))
                    if tuple(f.values[p] for p in fd.lhs) == lhs
                    and tuple(f.values[p] for p in fd.rhs) == seen[lhs]
                )
                out.append((fd, witness, fact.values))
            else:
                seen.setdefault(lhs, rhs)
    return out


def holds(instance: Instance, fds: Sequence[FunctionalDependency]) -> bool:
    """True iff every declared FD holds on the instance."""
    return not violations(instance, fds)


def attribute_closure(
    relation: str,
    positions: Iterable[int],
    fds: Sequence[FunctionalDependency],
) -> frozenset[int]:
    """Closure of attribute positions of ``relation`` under the FDs
    declared on it (FDs on other relations are ignored)."""
    closed: set[int] = set(positions)
    relevant = [fd for fd in fds if fd.relation == relation]
    changed = True
    while changed:
        changed = False
        for fd in relevant:
            if set(fd.lhs) <= closed and not set(fd.rhs) <= closed:
                closed.update(fd.rhs)
                changed = True
    return frozenset(closed)


def discover_fds(
    instance: Instance, relation: str, max_lhs: int = 2
) -> list[FunctionalDependency]:
    """Mine the minimal FDs with single-attribute RHS that hold on one
    relation instance, with LHS size up to ``max_lhs``.

    Minimality: an FD is reported only if no subset of its LHS already
    determines the same RHS.  Exhaustive over LHS subsets — suitable
    for the small experiment instances, not for data mining at scale.
    """
    rel = instance.schema.relation(relation)
    facts = sorted(instance.relation(relation))
    found: list[FunctionalDependency] = []
    determined: dict[int, list[frozenset[int]]] = {}

    def fd_holds(lhs: tuple[int, ...], rhs: int) -> bool:
        seen: dict[tuple, object] = {}
        for fact in facts:
            key = tuple(fact.values[p] for p in lhs)
            value = fact.values[rhs]
            if key in seen and seen[key] != value:
                return False
            seen.setdefault(key, value)
        return True

    positions = range(rel.arity)
    for size in range(1, max_lhs + 1):
        for lhs in combinations(positions, size):
            for rhs in positions:
                if rhs in lhs:
                    continue
                minimal = not any(
                    known <= frozenset(lhs)
                    for known in determined.get(rhs, [])
                )
                if minimal and fd_holds(lhs, rhs):
                    found.append(
                        FunctionalDependency(relation, lhs, (rhs,))
                    )
                    determined.setdefault(rhs, []).append(frozenset(lhs))
    return found
