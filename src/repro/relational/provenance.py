"""Why-provenance (witnesses) of view tuples.

For a match ``μ`` the *witness* is the set of facts ``{μ(T1)..μ(Tq)}``.
A view tuple may have several witnesses in general; the key-preserving
property of the paper guarantees exactly one, because the head exposes the
key values of every joined fact and a key identifies at most one fact per
relation (Section II.C).

This module computes witness maps and the inverted index
fact -> dependent view tuples that all the deletion-propagation
algorithms consume.
"""

from __future__ import annotations

from repro.errors import NotKeyPreservingError
from repro.relational.cq import ConjunctiveQuery
from repro.relational.evaluate import iter_matches
from repro.relational.instance import Instance
from repro.relational.tuples import Fact

__all__ = [
    "witness_map",
    "unique_witness_map",
    "inverted_index",
]


def witness_map(
    query: ConjunctiveQuery, instance: Instance
) -> dict[tuple, list[frozenset[Fact]]]:
    """Map each view tuple of ``query(instance)`` to all its witnesses.

    Witnesses are de-duplicated (two matches that use the same facts but
    differ on existential bindings contribute one witness).
    """
    out: dict[tuple, list[frozenset[Fact]]] = {}
    for match in iter_matches(query, instance):
        witnesses = out.setdefault(match.head, [])
        witness = match.witness_set()
        if witness not in witnesses:
            witnesses.append(witness)
    return out


def unique_witness_map(
    query: ConjunctiveQuery, instance: Instance
) -> dict[tuple, frozenset[Fact]]:
    """Map each view tuple to its *unique* witness.

    Raises :class:`NotKeyPreservingError` when some view tuple has more
    than one witness — which cannot happen for key-preserving queries, so
    this doubles as a runtime check of the property the paper relies on.
    """
    out: dict[tuple, frozenset[Fact]] = {}
    for head, witnesses in witness_map(query, instance).items():
        if len(witnesses) != 1:
            raise NotKeyPreservingError(
                f"view tuple {head!r} of query {query.name!r} has "
                f"{len(witnesses)} witnesses; key-preserving queries "
                "guarantee exactly one"
            )
        out[head] = witnesses[0]
    return out


def inverted_index(
    witness_maps: dict[str, dict[tuple, frozenset[Fact]]],
) -> dict[Fact, set[tuple[str, tuple]]]:
    """Invert per-view witness maps into fact -> dependent view tuples.

    ``witness_maps`` maps view name -> (view tuple -> witness).  The
    result maps each base fact to the set of ``(view_name, view_tuple)``
    pairs whose witness contains it.  Deleting the fact eliminates exactly
    those view tuples (for key-preserving queries).
    """
    index: dict[Fact, set[tuple[str, tuple]]] = {}
    for view_name, mapping in witness_maps.items():
        for head, witness in mapping.items():
            for fact in witness:
                index.setdefault(fact, set()).add((view_name, head))
    return index
