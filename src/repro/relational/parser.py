"""Parser for datalog-style conjunctive queries.

Grammar (whitespace-insensitive)::

    query     := NAME "(" terms ")" ( ":-" | "<-" ) atoms
    atoms     := atom ( "," atom )*
    atom      := NAME "(" terms ")"
    terms     := term ( "," term )*
    term      := "*"? ( VARIABLE | CONSTANT )
    VARIABLE  := identifier starting with a letter or underscore
    CONSTANT  := 'single quoted', "double quoted", integer, or float

Examples::

    Q3(x, z) :- T1(x, y), T2(y, z, w)
    Q(y) :- T(y, 'fixed', 3)
    Q(x, y) :- T(*x, y, w)          # star = key position (the paper's
                                    # underline convention)

A schema may be supplied (it carries arities and keys).  Without one,
:func:`infer_schema` derives it from the query text: starred positions
become the relation's key; relations with no starred position default to
the first attribute — the paper's convention when it does not underline
key positions explicitly.  When an explicit schema is given, stars are
validated against it (a star on a non-key position is an error).
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.errors import ParseError
from repro.relational.cq import Atom, ConjunctiveQuery, Constant, Term, Variable
from repro.relational.schema import Key, RelationSchema, Schema

__all__ = ["parse_query", "parse_queries", "infer_schema"]

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<lparen>\() |
        (?P<rparen>\)) |
        (?P<comma>,) |
        (?P<star>\*) |
        (?P<implies>:-|<-) |
        (?P<squote>'[^']*') |
        (?P<dquote>"[^"]*") |
        (?P<number>-?\d+\.\d+|-?\d+) |
        (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected input at {remainder[:20]!r}")
        pos = match.end()
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[tuple[str, str]], text: str):
        self._tokens = tokens
        self._index = 0
        self._text = text

    def peek(self) -> tuple[str, str] | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self._text!r}")
        self._index += 1
        return token

    def expect(self, kind: str) -> str:
        token_kind, value = self.next()
        if token_kind != kind:
            raise ParseError(
                f"expected {kind} but found {value!r} in {self._text!r}"
            )
        return value

    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)


def _parse_term(stream: _TokenStream) -> tuple[Term, bool]:
    """One term; returns ``(term, starred)`` where ``starred`` marks a
    ``*``-prefixed (key) position."""
    kind, value = stream.next()
    starred = False
    if kind == "star":
        starred = True
        kind, value = stream.next()
    if kind == "name":
        return Variable(value), starred
    if kind in ("squote", "dquote"):
        return Constant(value[1:-1]), starred
    if kind == "number":
        return Constant(float(value) if "." in value else int(value)), starred
    raise ParseError(f"expected a term, found {value!r}")


def _parse_term_list(stream: _TokenStream) -> tuple[list[Term], tuple[int, ...]]:
    """A parenthesized term list; returns ``(terms, starred_positions)``."""
    stream.expect("lparen")
    term, starred = _parse_term(stream)
    terms = [term]
    stars = [0] if starred else []
    while True:
        kind, _ = stream.next()
        if kind == "rparen":
            return terms, tuple(stars)
        if kind != "comma":
            raise ParseError("expected ',' or ')' in term list")
        term, starred = _parse_term(stream)
        if starred:
            stars.append(len(terms))
        terms.append(term)


def _parse_atom(stream: _TokenStream) -> tuple[Atom, tuple[int, ...]]:
    relation = stream.expect("name")
    terms, stars = _parse_term_list(stream)
    return Atom(relation, terms), stars


def parse_query(text: str, schema: Schema | None = None) -> ConjunctiveQuery:
    """Parse one CQ.  If ``schema`` is ``None`` it is inferred via
    :func:`infer_schema` (starred positions — or the first position —
    of each relation form the key)."""
    stream = _TokenStream(_tokenize(text), text)
    name = stream.expect("name")
    head, head_stars = _parse_term_list(stream)
    if head_stars:
        raise ParseError("key stars belong in body atoms, not the head")
    stream.expect("implies")
    atoms_with_stars = [_parse_atom(stream)]
    while not stream.exhausted():
        stream.expect("comma")
        atoms_with_stars.append(_parse_atom(stream))
    body = [atom for atom, _ in atoms_with_stars]
    if schema is None:
        schema = infer_schema([text])
    else:
        for atom, stars in atoms_with_stars:
            if not stars:
                continue
            if atom.relation not in schema:
                continue  # arity validation happens in ConjunctiveQuery
            declared = schema.relation(atom.relation).key.positions
            if tuple(stars) != declared:
                raise ParseError(
                    f"atom {atom!r} stars positions {list(stars)} but the "
                    f"schema keys {atom.relation!r} on {list(declared)}"
                )
    return ConjunctiveQuery(name, head, body, schema)


def parse_queries(
    texts: Iterable[str], schema: Schema | None = None
) -> list[ConjunctiveQuery]:
    """Parse several CQs against one shared schema (inferred across all
    of them when not given, so relations shared between queries agree)."""
    texts = list(texts)
    if schema is None:
        schema = infer_schema(texts)
    return [parse_query(text, schema) for text in texts]


def infer_schema(
    texts: Iterable[str], keys: dict[str, Iterable[int]] | None = None
) -> Schema:
    """Infer a schema from query texts.

    Every relation gets attributes ``a0..a{n-1}``.  Its key comes from,
    in order of precedence: the ``keys`` override, ``*``-starred
    positions in the query text, or position 0.  Raises
    :class:`ParseError` on inconsistent arities or inconsistent stars
    across queries.
    """
    keys = keys or {}
    arities: dict[str, int] = {}
    starred: dict[str, tuple[int, ...]] = {}
    for text in texts:
        stream = _TokenStream(_tokenize(text), text)
        stream.expect("name")
        _parse_term_list(stream)
        stream.expect("implies")
        while True:
            atom, stars = _parse_atom(stream)
            seen = arities.get(atom.relation)
            if seen is not None and seen != atom.arity:
                raise ParseError(
                    f"relation {atom.relation!r} used with arities "
                    f"{seen} and {atom.arity}"
                )
            arities[atom.relation] = atom.arity
            if stars:
                previous = starred.get(atom.relation)
                if previous is not None and previous != stars:
                    raise ParseError(
                        f"relation {atom.relation!r} starred as "
                        f"{list(previous)} and {list(stars)}"
                    )
                starred[atom.relation] = stars
            if stream.exhausted():
                break
            stream.expect("comma")
    schema = Schema()
    for relation, arity in arities.items():
        if relation in keys:
            key = Key(keys[relation])
        elif relation in starred:
            key = Key(starred[relation])
        else:
            key = Key((0,))
        attributes = tuple(f"a{i}" for i in range(arity))
        schema.add(RelationSchema(relation, attributes, key))
    return schema
