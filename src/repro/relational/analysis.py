"""Query-class predicates for the complexity landscape (Tables II–V).

The paper positions its results against a landscape of dichotomies from
prior work.  This module implements machine-checkable versions of every
query property those dichotomies are stated over, so that
:mod:`repro.core.classify` can regenerate Tables II–V from first
principles:

* **project-free** / **self-join-free** / **key-preserving** — directly on
  :class:`~repro.relational.cq.ConjunctiveQuery` (re-exported here).
* **head domination** (Kimelfeld, Vondrák, Williams 2012): for every
  connected component of the existential-connection graph of the atoms,
  some atom contains all head variables appearing in the component.
* **fd-head domination** (Kimelfeld 2012): head domination after closing
  the head variables under a set of functional dependencies.
* **triad** (Freire, Gatterbauer, Immerman, Meliou 2015, for resilience =
  source side-effect): three atoms pairwise connected by paths that avoid
  the third atom's variables.
* **fd-induced triad**: triad after saturating the query under FDs.

The definitions are implemented for self-join-free CQs, which is the
setting in which the cited dichotomies hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from repro.errors import QueryError, ReproError
from repro.relational.cq import Atom, ConjunctiveQuery, Variable

__all__ = [
    "FunctionalDependency",
    "existential_components",
    "has_head_domination",
    "has_fd_head_domination",
    "fd_closure_variables",
    "has_triad",
    "has_fd_induced_triad",
    "head_domination_counterexample",
    "find_triad",
    "is_hierarchical",
    "query_set_flags",
]


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``relation: lhs -> rhs`` over attribute
    positions of one relation."""

    relation: str
    lhs: tuple[int, ...]
    rhs: tuple[int, ...]

    def __init__(self, relation: str, lhs: Iterable[int], rhs: Iterable[int]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "lhs", tuple(sorted(set(lhs))))
        object.__setattr__(self, "rhs", tuple(sorted(set(rhs))))
        if not self.lhs or not self.rhs:
            raise QueryError("functional dependency needs non-empty sides")

    def __repr__(self) -> str:
        return f"{self.relation}:{list(self.lhs)}->{list(self.rhs)}"


# ----------------------------------------------------------------------
# Head domination (Kimelfeld et al. 2012)
# ----------------------------------------------------------------------


def existential_components(
    query: ConjunctiveQuery,
    effective_head: frozenset[Variable] | None = None,
) -> list[list[Atom]]:
    """Connected components of the atoms under *existential connection*.

    Two atoms are connected when they share an existential variable.
    Atoms without existential variables form singleton components.
    ``effective_head`` widens the head-variable set (variables there are
    *not* existential) — used by the fd-variant, where FD-determined
    variables behave like head variables.
    """
    atoms = list(query.body)
    head = effective_head if effective_head is not None else query.head_variables()
    existential = query.body_variables() - head
    parent = list(range(len(atoms)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    for (i, a), (j, b) in combinations(enumerate(atoms), 2):
        if a.variable_set() & b.variable_set() & existential:
            union(i, j)

    groups: dict[int, list[Atom]] = {}
    for i, atom in enumerate(atoms):
        groups.setdefault(find(i), []).append(atom)
    return list(groups.values())


def head_domination_counterexample(
    query: ConjunctiveQuery, effective_head: frozenset[Variable] | None = None
) -> tuple[list[Atom], frozenset[Variable]] | None:
    """The witness of *failed* head domination, or ``None`` when the
    query is head-dominated.

    Returns the offending existential component (as its atoms) together
    with the set of head variables occurring in it that no single atom
    covers — the explanation a user needs to see *why* their query
    falls on the hard side of the Kimelfeld et al. dichotomy.
    """
    head = effective_head if effective_head is not None else query.head_variables()
    for component in existential_components(query, effective_head=head):
        component_vars: set[Variable] = set()
        for atom in component:
            component_vars.update(atom.variable_set())
        needed = frozenset(component_vars & head)
        if not needed:
            continue
        if not any(needed <= atom.variable_set() for atom in query.body):
            return component, needed
    return None


def has_head_domination(
    query: ConjunctiveQuery, effective_head: frozenset[Variable] | None = None
) -> bool:
    """Head domination: for every existential component γ, some atom of
    the query contains every *head* variable occurring in γ's atoms.

    ``effective_head`` overrides the query's head-variable set (both for
    the domination check and for which variables count as existential);
    this is how the fd-variant reuses the check with an FD-closed head.
    """
    return head_domination_counterexample(query, effective_head) is None


# ----------------------------------------------------------------------
# Functional dependencies over variables
# ----------------------------------------------------------------------


def _variable_fds(
    query: ConjunctiveQuery, fds: Sequence[FunctionalDependency]
) -> list[tuple[frozenset[Variable], frozenset[Variable]]]:
    """Lift attribute-position FDs to variable-level implications.

    For an sj-free query each relation occurs once, so the lift is
    unambiguous: the FD ``T: lhs -> rhs`` becomes
    ``vars(atom_T at lhs) -> vars(atom_T at rhs)`` (constant positions
    are dropped: constants are always 'determined')."""
    atom_by_relation = {atom.relation: atom for atom in query.body}
    out: list[tuple[frozenset[Variable], frozenset[Variable]]] = []
    for fd in fds:
        atom = atom_by_relation.get(fd.relation)
        if atom is None:
            continue
        lhs_vars = frozenset(
            t for t in atom.terms_at(fd.lhs) if isinstance(t, Variable)
        )
        rhs_vars = frozenset(
            t for t in atom.terms_at(fd.rhs) if isinstance(t, Variable)
        )
        out.append((lhs_vars, rhs_vars))
    return out


def fd_closure_variables(
    query: ConjunctiveQuery,
    seed: Iterable[Variable],
    fds: Sequence[FunctionalDependency],
) -> frozenset[Variable]:
    """Closure of ``seed`` under the variable-level FDs of the query."""
    implications = _variable_fds(query, fds)
    closed: set[Variable] = set(seed)
    changed = True
    while changed:
        changed = False
        for lhs, rhs in implications:
            if lhs <= closed and not rhs <= closed:
                closed.update(rhs)
                changed = True
    return frozenset(closed)


def has_fd_head_domination(
    query: ConjunctiveQuery, fds: Sequence[FunctionalDependency]
) -> bool:
    """fd-head domination (Kimelfeld 2012): head domination where the
    head is first closed under the functional dependencies.  With no FDs
    this degenerates to plain head domination."""
    closed_head = fd_closure_variables(query, query.head_variables(), fds)
    return has_head_domination(query, effective_head=closed_head)


# ----------------------------------------------------------------------
# Triads (Freire et al. 2015)
# ----------------------------------------------------------------------


def _connected_avoiding(
    query: ConjunctiveQuery, source: Atom, target: Atom, avoid: frozenset[Variable]
) -> bool:
    """Is there a path of atoms from ``source`` to ``target`` where no
    atom on the path (endpoints included) uses a variable of ``avoid``
    other than through the endpoints themselves?

    Following Freire et al., a path is a sequence of atoms in which
    consecutive atoms share a variable *not in* ``avoid``, and the
    intermediate atoms contain no variable of ``avoid``.
    """
    start_vars = source.variable_set() - avoid
    target_vars = target.variable_set() - avoid
    if start_vars & target_vars:
        return True
    allowed = [
        atom
        for atom in query.body
        if atom not in (source, target) and not atom.variable_set() & avoid
    ]
    reached: set[Variable] = set(start_vars)
    used = [False] * len(allowed)
    progress = True
    while progress:
        progress = False
        for i, atom in enumerate(allowed):
            if not used[i] and atom.variable_set() & reached:
                used[i] = True
                reached.update(atom.variable_set())
                progress = True
    return bool(target_vars & reached)


def find_triad(
    query: ConjunctiveQuery,
) -> tuple[Atom, Atom, Atom] | None:
    """The first triad of the query (three atoms pairwise connected by
    paths avoiding the third's variables), or ``None`` — the explaining
    counterpart of :func:`has_triad`."""
    if not query.is_self_join_free():
        raise QueryError("triad detection is defined for sj-free queries")
    atoms = list(query.body)
    if len(atoms) < 3:
        return None
    for s0, s1, s2 in combinations(atoms, 3):
        pairs = ((s0, s1, s2), (s0, s2, s1), (s1, s2, s0))
        if all(
            _connected_avoiding(query, a, b, c.variable_set())
            for a, b, c in pairs
        ):
            return s0, s1, s2
    return None


def has_triad(query: ConjunctiveQuery) -> bool:
    """Triad detection for self-join-free CQs.

    A *triad* is a triple of atoms ``{S0, S1, S2}`` such that every pair
    is connected by a path avoiding the variables of the third atom.
    Queries whose dual hypergraph excludes triads have PTIME resilience
    (source side-effect); with a triad the problem is NP-complete.
    """
    return find_triad(query) is not None


def _saturate_under_fds(
    query: ConjunctiveQuery, fds: Sequence[FunctionalDependency]
) -> ConjunctiveQuery:
    """Freire et al.'s induced rewriting, simplified: extend the head by
    its FD closure.  Atoms whose variables become fully head-determined
    no longer contribute existential structure."""
    closed_head = fd_closure_variables(query, query.head_variables(), fds)
    new_head = list(query.head)
    for var in sorted(closed_head - query.head_variables()):
        new_head.append(var)
    return ConjunctiveQuery(query.name, new_head, query.body, query.schema)


def has_fd_induced_triad(
    query: ConjunctiveQuery, fds: Sequence[FunctionalDependency]
) -> bool:
    """Triad check after FD saturation (the 'fd-induced triad' of Freire
    et al.).  With no FDs this equals :func:`has_triad`."""
    return has_triad(_saturate_under_fds(query, fds))


# ----------------------------------------------------------------------
# Hierarchical queries
# ----------------------------------------------------------------------


def is_hierarchical(query: ConjunctiveQuery) -> bool:
    """Hierarchical test on the existential variables: for every pair of
    existential variables ``x, y``, the atom sets ``atoms(x)`` and
    ``atoms(y)`` are nested or disjoint.

    Hierarchical structure is the backbone of several dichotomies in
    this literature (safe query plans, resilience for sj-free CQs); the
    classifier reports it alongside the paper's own predicates.
    """
    existential = sorted(query.existential_variables())
    atom_sets = {
        var: frozenset(
            i for i, atom in enumerate(query.body)
            if var in atom.variable_set()
        )
        for var in existential
    }
    for i, x in enumerate(existential):
        for y in existential[i + 1 :]:
            a, b = atom_sets[x], atom_sets[y]
            if a & b and not (a <= b or b <= a):
                return False
    return True


# ----------------------------------------------------------------------
# The single shared structural scan
# ----------------------------------------------------------------------


def query_set_flags(
    queries: Sequence[ConjunctiveQuery],
    fds: Sequence[FunctionalDependency] = (),
) -> dict[str, bool | None]:
    """Every structural flag of a query set, evaluated in one scan.

    This is the single source of truth behind both the complexity
    classifier (:mod:`repro.core.classify`, Tables II–V) and the
    dispatcher's :class:`~repro.core.session.StructureProfile` — each
    underlying predicate runs exactly once per call.

    Keys always present: ``multiple_queries``, ``project_free``,
    ``self_join_free``, ``key_preserving``, ``forest_structure`` (the
    raw forest-case test on the dual hypergraph) and ``forest_case``
    (the paper's algorithmic forest case: key-preserving *and* forest
    structure).  The Tables IV/V single-query analyses
    (``head_domination``, ``fd_head_domination``, ``triad``,
    ``fd_induced_triad``, ``hierarchical``) are ``None`` when undefined
    — multiple queries, a self-join, or an analysis that rejects the
    query class.
    """
    from repro.hypergraph.dual import is_forest_case

    single = queries[0] if len(queries) == 1 else None
    project_free = all(q.is_project_free() for q in queries)
    self_join_free = all(q.is_self_join_free() for q in queries)
    key_preserving = all(q.is_key_preserving() for q in queries)
    forest_structure = is_forest_case(queries)
    flags: dict[str, bool | None] = {
        "multiple_queries": len(queries) > 1,
        "project_free": project_free,
        "self_join_free": self_join_free,
        "key_preserving": key_preserving,
        "forest_structure": forest_structure,
        "forest_case": key_preserving and forest_structure,
    }

    def probe(analysis) -> bool | None:
        # A dichotomy predicate defined only on a narrower query class
        # answers "undefined" (None) instead of crashing the scan.
        try:
            return bool(analysis())
        except ReproError:
            return None

    if single is not None and self_join_free:
        flags["head_domination"] = probe(
            lambda: has_head_domination(single)
        )
        flags["fd_head_domination"] = probe(
            lambda: has_fd_head_domination(single, fds)
        )
        flags["triad"] = probe(lambda: has_triad(single))
        flags["fd_induced_triad"] = probe(
            lambda: has_fd_induced_triad(single, fds)
        )
        flags["hierarchical"] = probe(lambda: is_hierarchical(single))
    else:
        flags["head_domination"] = None
        flags["fd_head_domination"] = None
        flags["triad"] = None
        flags["fd_induced_triad"] = None
        flags["hierarchical"] = None
    return flags
