"""Relation schemas, keys, and database schemas.

The paper (Section II.A) models a schema ``S`` as a finite sequence of
distinct relation symbols ``T1..Tm``, each with a fixed arity.  Every
relation used by a key-preserving query additionally declares a *key*: a
non-empty set of attribute positions such that no two tuples of the
relation agree on all key positions.

This module provides the immutable schema objects used everywhere else:

* :class:`Key` -- a set of attribute positions of one relation.
* :class:`RelationSchema` -- relation name, arity, attribute names, key.
* :class:`Schema` -- an ordered collection of relation schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError

__all__ = ["Key", "RelationSchema", "Schema"]


@dataclass(frozen=True)
class Key:
    """A primary key: an ordered tuple of attribute positions.

    Positions are zero-based indexes into the relation's attribute list.
    The paper requires *at least one* key attribute position per atom
    (Section II.B, "Key-preserving").
    """

    positions: tuple[int, ...]

    def __init__(self, positions: Iterable[int]):
        object.__setattr__(self, "positions", tuple(sorted(set(positions))))
        if not self.positions:
            raise SchemaError("a key must contain at least one position")
        if any(p < 0 for p in self.positions):
            raise SchemaError(f"key positions must be non-negative: {self.positions}")

    def __iter__(self) -> Iterator[int]:
        return iter(self.positions)

    def __len__(self) -> int:
        return len(self.positions)

    def __contains__(self, position: int) -> bool:
        return position in self.positions

    def validate_for_arity(self, arity: int) -> None:
        """Raise :class:`SchemaError` if any position is out of range."""
        for p in self.positions:
            if p >= arity:
                raise SchemaError(
                    f"key position {p} out of range for relation of arity {arity}"
                )


@dataclass(frozen=True)
class RelationSchema:
    """Schema of a single relation: name, attributes, and primary key.

    Parameters
    ----------
    name:
        Relation symbol, e.g. ``"T1"`` or ``"Author"``.
    attributes:
        Attribute names; their count is the relation's arity (``Dim`` in
        the paper).  Attribute names must be distinct.
    key:
        Primary key.  Defaults to the first attribute, mirroring the
        paper's convention of underlining the first position when no key
        is stated explicitly.
    """

    name: str
    attributes: tuple[str, ...]
    key: Key = field(default=None)  # type: ignore[assignment]

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        key: Key | Iterable[int] | None = None,
    ):
        if not name:
            raise SchemaError("relation name must be non-empty")
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} must have arity > 0")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"relation {name!r} has duplicate attribute names")
        if key is None:
            key = Key((0,))
        elif not isinstance(key, Key):
            key = Key(key)
        key.validate_for_arity(len(attrs))
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "key", key)

    @property
    def arity(self) -> int:
        """Number of attributes (``Dim`` in the paper)."""
        return len(self.attributes)

    def key_of(self, values: Sequence[object]) -> tuple[object, ...]:
        """Project ``values`` (a full tuple of this relation) onto the key."""
        if len(values) != self.arity:
            raise SchemaError(
                f"tuple of arity {len(values)} does not match relation "
                f"{self.name!r} of arity {self.arity}"
            )
        return tuple(values[p] for p in self.key)

    def position_of(self, attribute: str) -> int:
        """Return the position of ``attribute``; raise if unknown."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def __str__(self) -> str:
        cols = [
            f"*{a}" if i in self.key else a for i, a in enumerate(self.attributes)
        ]
        return f"{self.name}({', '.join(cols)})"


class Schema:
    """A database schema: an ordered mapping of relation name -> schema.

    Iteration order is insertion order, matching the paper's notion of a
    schema as a finite *sequence* of relations.
    """

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations: dict[str, RelationSchema] = {}
        for rel in relations:
            self.add(rel)

    def add(self, relation: RelationSchema) -> None:
        """Add one relation schema; names must be unique."""
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation schema by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def as_mapping(self) -> Mapping[str, RelationSchema]:
        """Read-only view of the name -> relation mapping."""
        return dict(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        inner = "; ".join(str(r) for r in self)
        return f"Schema[{inner}]"
