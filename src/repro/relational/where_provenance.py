"""Where-provenance: which source *cells* feed each view cell.

The paper's annotation application (Section V) propagates annotations
"to the fields of view tuples" — that is where-provenance (Buneman et
al.; Cheney, Chiticariu, Tan survey [11]): for every position of a view
tuple, the set of source cells ``(fact, position)`` whose value was
copied there by some match.

Why-provenance (witnesses) drives deletion; where-provenance drives
cell-level annotation placement.  Both are derived from the same match
enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.relational.cq import ConjunctiveQuery, Variable
from repro.relational.evaluate import iter_matches
from repro.relational.instance import Instance
from repro.relational.tuples import Fact

__all__ = ["Cell", "where_provenance", "annotate_cells"]


@dataclass(frozen=True, order=True)
class Cell:
    """One source cell: a fact and an attribute position inside it."""

    fact: Fact
    position: int

    @property
    def value(self) -> object:
        return self.fact.values[self.position]

    def __repr__(self) -> str:
        return f"{self.fact!r}[{self.position}]"


def where_provenance(
    query: ConjunctiveQuery, instance: Instance
) -> dict[tuple, tuple[frozenset[Cell], ...]]:
    """Map every view tuple to, per head position, the source cells
    copied into it (union over all matches).

    Head positions holding constants get empty cell sets — their value
    is invented by the query, not copied from the data.
    """
    out: dict[tuple, list[set[Cell]]] = {}
    for match in iter_matches(query, instance):
        slots = out.setdefault(
            match.head, [set() for _ in range(query.arity)]
        )
        for head_index, term in enumerate(query.head):
            if not isinstance(term, Variable):
                continue
            for atom, fact in zip(query.body, match.witness):
                for position, atom_term in enumerate(atom.terms):
                    if atom_term == term:
                        slots[head_index].add(Cell(fact, position))
    return {
        head: tuple(frozenset(cells) for cells in slots)
        for head, slots in out.items()
    }


def annotate_cells(
    query: ConjunctiveQuery,
    instance: Instance,
    annotations: Mapping[tuple, Mapping[int, object]],
) -> dict[Cell, set[object]]:
    """Propagate view-cell annotations back to source cells.

    ``annotations`` maps view tuples to ``{head position: annotation}``.
    The result maps each source cell to the set of annotations that
    reach it through where-provenance.  This is the cell-level engine
    behind :class:`repro.apps.annotation.AnnotationPropagator`.
    """
    provenance = where_provenance(query, instance)
    out: dict[Cell, set[object]] = {}
    for head, per_position in annotations.items():
        slots = provenance.get(tuple(head))
        if slots is None:
            continue
        for position, annotation in per_position.items():
            if not 0 <= position < len(slots):
                continue
            for cell in slots[position]:
                out.setdefault(cell, set()).add(annotation)
    return out
