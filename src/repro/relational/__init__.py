"""Relational database substrate: schemas, instances, conjunctive queries,
evaluation, provenance, and materialized views.

This subpackage is the foundation every deletion-propagation algorithm in
:mod:`repro.core` builds on.  Public API re-exports:

>>> from repro.relational import (
...     Schema, RelationSchema, Key, Fact, Instance,
...     ConjunctiveQuery, Atom, Variable, Constant,
...     parse_query, parse_queries, infer_schema,
...     evaluate, result_tuples,
...     View, ViewSet, ViewTuple, Deletion,
... )
"""

from repro.relational.analysis import (
    FunctionalDependency,
    existential_components,
    fd_closure_variables,
    find_triad,
    has_fd_head_domination,
    has_fd_induced_triad,
    has_head_domination,
    has_triad,
    head_domination_counterexample,
    is_hierarchical,
)
from repro.relational.containment import (
    homomorphism,
    is_contained_in,
    is_equivalent,
    minimize,
)
from repro.relational.cq import Atom, ConjunctiveQuery, Constant, Term, Variable
from repro.relational.dependencies import (
    attribute_closure,
    discover_fds,
    holds,
    violations,
)
from repro.relational.evaluate import Match, evaluate, iter_matches, result_tuples
from repro.relational.instance import Instance
from repro.relational.maintenance import MaintainedView, MaintainedViewSet
from repro.relational.parser import infer_schema, parse_queries, parse_query
from repro.relational.render import (
    render_instance,
    render_queries,
    render_relation,
    render_view,
)
from repro.relational.provenance import (
    inverted_index,
    unique_witness_map,
    witness_map,
)
from repro.relational.schema import Key, RelationSchema, Schema
from repro.relational.tuples import Fact
from repro.relational.views import Deletion, View, ViewSet, ViewTuple
from repro.relational.where_provenance import (
    Cell,
    annotate_cells,
    where_provenance,
)

__all__ = [
    "Atom",
    "Cell",
    "ConjunctiveQuery",
    "Constant",
    "Deletion",
    "Fact",
    "FunctionalDependency",
    "Instance",
    "Key",
    "MaintainedView",
    "MaintainedViewSet",
    "Match",
    "RelationSchema",
    "Schema",
    "Term",
    "Variable",
    "View",
    "ViewSet",
    "ViewTuple",
    "annotate_cells",
    "attribute_closure",
    "discover_fds",
    "evaluate",
    "existential_components",
    "fd_closure_variables",
    "find_triad",
    "has_fd_head_domination",
    "has_fd_induced_triad",
    "has_head_domination",
    "has_triad",
    "head_domination_counterexample",
    "holds",
    "homomorphism",
    "infer_schema",
    "inverted_index",
    "is_contained_in",
    "is_equivalent",
    "is_hierarchical",
    "minimize",
    "iter_matches",
    "parse_queries",
    "parse_query",
    "render_instance",
    "render_queries",
    "render_relation",
    "render_view",
    "result_tuples",
    "unique_witness_map",
    "violations",
    "where_provenance",
    "witness_map",
]
