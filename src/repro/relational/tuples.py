"""Facts: tuples tagged with their relation symbol.

The paper treats an instance as a set of *facts* ``T(t)`` (Section II.A).
A :class:`Fact` is exactly that: an immutable, hashable pair of relation
name and value tuple.  Facts are what deletion-propagation solutions
(``ΔD``) are made of, so they must be cheap to hash and compare.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import InstanceError
from repro.relational.schema import RelationSchema

__all__ = ["Fact"]


class Fact:
    """An immutable fact ``relation(values...)``.

    Facts compare and hash by ``(relation, values)`` so that sets of facts
    behave like the paper's set-of-facts instances.
    """

    __slots__ = ("relation", "values", "_hash")

    def __init__(self, relation: str, values: Iterable[object]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "values", tuple(values))
        object.__setattr__(self, "_hash", hash((relation, self.values)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Fact is immutable")

    @property
    def arity(self) -> int:
        return len(self.values)

    def key_values(self, schema: RelationSchema) -> tuple[object, ...]:
        """Project this fact onto the key of ``schema``.

        Raises :class:`InstanceError` when the fact does not belong to the
        relation or has the wrong arity.
        """
        if schema.name != self.relation:
            raise InstanceError(
                f"fact of relation {self.relation!r} projected with schema "
                f"of {schema.name!r}"
            )
        if schema.arity != self.arity:
            raise InstanceError(
                f"fact arity {self.arity} does not match schema arity "
                f"{schema.arity} for relation {self.relation!r}"
            )
        return tuple(self.values[p] for p in schema.key)

    def __iter__(self) -> Iterator[object]:
        return iter(self.values)

    def __getitem__(self, position: int) -> object:
        return self.values[position]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self.relation == other.relation and self.values == other.values

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Fact") -> bool:
        # Total order so solutions can be printed deterministically.  Mixed
        # value types fall back to comparing their reprs.
        if not isinstance(other, Fact):
            return NotImplemented
        if self.relation != other.relation:
            return self.relation < other.relation
        try:
            return self.values < other.values
        except TypeError:
            return repr(self.values) < repr(other.values)

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.relation}({inner})"
