"""Conjunctive-query containment, equivalence, and minimization.

Chandra and Merlin (STOC 1977 — the paper's reference [9]) showed that
``Q1 ⊆ Q2`` holds iff there is a *homomorphism* from ``Q2`` to ``Q1``:
a mapping of ``Q2``'s variables to ``Q1``'s terms that sends every body
atom of ``Q2`` onto a body atom of ``Q1`` and the head onto the head.
This module implements the homomorphism test by backtracking, the
derived containment/equivalence checks, and core computation
(minimization: repeatedly drop redundant atoms while staying
equivalent).

Deletion-propagation relevance: equivalent queries define the same
views, so minimizing queries first never changes a problem's optimum —
``tests/relational/test_containment.py`` checks exactly that — while it
can shrink witnesses and hence the covering structure the algorithms
work on.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import QueryError
from repro.relational.cq import Atom, ConjunctiveQuery, Constant, Term, Variable

__all__ = ["homomorphism", "is_contained_in", "is_equivalent", "minimize"]


def _compatible(
    source_atom: Atom,
    target_atom: Atom,
    mapping: dict[Variable, Term],
) -> dict[Variable, Term] | None:
    """Try to extend ``mapping`` so that it sends ``source_atom`` onto
    ``target_atom``; return the extension or None."""
    if source_atom.relation != target_atom.relation:
        return None
    extension = dict(mapping)
    for source_term, target_term in zip(source_atom.terms, target_atom.terms):
        if isinstance(source_term, Constant):
            if source_term != target_term:
                return None
            continue
        bound = extension.get(source_term)
        if bound is None:
            extension[source_term] = target_term
        elif bound != target_term:
            return None
    return extension


def homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Mapping[Variable, Term] | None:
    """A homomorphism ``h : source → target`` (head-preserving), or
    ``None``.

    ``h`` maps each variable of ``source`` to a term of ``target`` such
    that every ``source`` body atom lands on some ``target`` body atom
    and ``h(source.head) = target.head`` positionally.
    """
    if source.arity != target.arity:
        return None
    # Seed the mapping from the heads.
    mapping: dict[Variable, Term] = {}
    for source_term, target_term in zip(source.head, target.head):
        if isinstance(source_term, Constant):
            if source_term != target_term:
                return None
            continue
        bound = mapping.get(source_term)
        if bound is None:
            mapping[source_term] = target_term
        elif bound != target_term:
            return None

    atoms = list(source.body)

    def search(index: int, current: dict[Variable, Term]):
        if index == len(atoms):
            return current
        for target_atom in target.body:
            extension = _compatible(atoms[index], target_atom, current)
            if extension is not None:
                result = search(index + 1, extension)
                if result is not None:
                    return result
        return None

    return search(0, mapping)


def is_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """``Q1 ⊆ Q2`` (every answer of Q1 on any instance is an answer of
    Q2), via Chandra–Merlin: a homomorphism from Q2 to Q1 exists."""
    return homomorphism(q2, q1) is not None


def is_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Semantic equivalence: containment in both directions."""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of the query: greedily drop body atoms while the result
    stays equivalent to the input.  The core is unique up to renaming;
    the scan order makes this implementation deterministic."""
    body = list(query.body)
    changed = True
    while changed and len(body) > 1:
        changed = False
        for index in range(len(body)):
            candidate_body = body[:index] + body[index + 1 :]
            try:
                candidate = ConjunctiveQuery(
                    query.name, query.head, candidate_body, query.schema
                )
            except QueryError:
                continue  # dropping the atom made the head unsafe
            if is_equivalent(candidate, query):
                body = candidate_body
                changed = True
                break
    return ConjunctiveQuery(query.name, query.head, body, query.schema)
