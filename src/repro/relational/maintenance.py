"""Incremental view maintenance under deletions *and* insertions.

Deletion propagation repeatedly asks "what happens to the views if
these facts change?".  Re-evaluating every query from scratch is
correct but wasteful; this module provides the classic counting-based
alternative:

* every view tuple tracks its live *derivations* (one fact per atom,
  i.e. per-atom witnesses — distinct existential bindings over the same
  facts collapse into one derivation);
* each base fact indexes the derivations it participates in, so a
  **deletion** kills the affected derivations in O(affected) time; a
  view tuple disappears exactly when its live-derivation count reaches
  zero — the same semantics the paper's condition (a)/(b) accounting
  uses;
* an **insertion** runs delta evaluation: the new derivations are the
  matches with the new fact pinned at each atom of its relation
  (:func:`repro.relational.evaluate.iter_matches_pinned`), deduplicated
  across pin positions for self-joins.

Dead derivations are pruned eagerly: when a deletion kills a
derivation, every index entry for it is removed, so the bookkeeping is
always proportional to the *live* derivations and stays bounded under
arbitrary add/delete churn (the churn regression test in
``tests/relational/test_maintenance.py`` pins this down).

:class:`MaintainedView` is stateful (facts can be changed one at a time
and the view observed after each step, as the sequential cleaning loop
of Section V does); :class:`MaintainedViewSet` maintains one view per
query over a *single shared* source instance — the m views index their
own derivations but never duplicate the base data.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import InstanceError
from repro.relational.cq import ConjunctiveQuery
from repro.relational.evaluate import iter_matches, iter_matches_pinned
from repro.relational.instance import Instance
from repro.relational.tuples import Fact

__all__ = ["MaintainedView", "MaintainedViewSet"]

_Derivation = tuple[tuple, tuple[Fact, ...]]  # (head, per-atom facts)


class MaintainedView:
    """A materialized view maintained incrementally under updates.

    By default the view works on a private copy of ``instance`` so that
    callers' data is never mutated; pass ``share_instance=True`` to
    operate directly on the given object (used by
    :class:`MaintainedViewSet` to keep one source of truth across m
    views).
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        instance: Instance,
        share_instance: bool = False,
    ):
        self.query = query
        self.name = query.name
        self._instance = instance if share_instance else instance.copy()
        self._alive: set[_Derivation] = set()
        self._support: dict[tuple, int] = {}
        self._by_fact: dict[Fact, set[_Derivation]] = {}
        # Facts ever seen in a witness (grows with distinct facts, not
        # with derivations or churn) and the deleted subset of them.
        self._participated: set[Fact] = set()
        self._gone: set[Fact] = set()
        for match in iter_matches(query, self._instance):
            self._admit(match.head, match.witness)

    # ------------------------------------------------------------------
    # Internal bookkeeping
    # ------------------------------------------------------------------

    def _admit(self, head: tuple, witness: tuple[Fact, ...]) -> bool:
        """Register a derivation; returns True when the view tuple was
        absent before (i.e. this derivation makes it appear)."""
        key = (head, witness)
        if key in self._alive:
            return False
        appeared = self._support.get(head, 0) == 0
        self._alive.add(key)
        self._support[head] = self._support.get(head, 0) + 1
        for fact in set(witness):
            self._by_fact.setdefault(fact, set()).add(key)
            self._participated.add(fact)
        return appeared

    def _retract(self, fact: Fact) -> frozenset[tuple]:
        """Kill and prune every derivation through ``fact``; returns the
        view tuples that disappeared.  Does not touch the instance."""
        if fact in self._participated:
            self._gone.add(fact)
        removed: set[tuple] = set()
        for key in self._by_fact.pop(fact, ()):
            self._alive.discard(key)
            head, witness = key
            count = self._support[head] - 1
            if count:
                self._support[head] = count
            else:
                del self._support[head]
                removed.add(head)
            # Prune the dead derivation from every other fact's index so
            # the structures track live derivations only.
            for other in set(witness):
                if other == fact:
                    continue
                keys = self._by_fact.get(other)
                if keys is not None:
                    keys.discard(key)
                    if not keys:
                        del self._by_fact[other]
        return frozenset(removed)

    def _delta_insert(self, fact: Fact) -> frozenset[tuple]:
        """Delta-evaluate one insertion (instance already updated);
        returns the view tuples that newly appeared."""
        self._gone.discard(fact)
        appeared: set[tuple] = set()
        for atom_index, atom in enumerate(self.query.body):
            if atom.relation != fact.relation:
                continue
            for match in iter_matches_pinned(
                self.query, self._instance, atom_index, fact
            ):
                if self._admit(match.head, match.witness):
                    appeared.add(match.head)
        return frozenset(appeared)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def tuples(self) -> frozenset[tuple]:
        """The current view contents."""
        return frozenset(self._support)

    def support(self, head: tuple) -> int:
        """Number of live derivations of a view tuple (0 = gone)."""
        return self._support.get(tuple(head), 0)

    def __contains__(self, head: tuple) -> bool:
        return self.support(tuple(head)) > 0

    def __len__(self) -> int:
        return len(self._support)

    @property
    def instance(self) -> Instance:
        """The maintained view's current notion of the source data."""
        return self._instance

    def live_derivations(self) -> int:
        """Number of live derivations across all view tuples (the
        bookkeeping footprint; bounded under churn)."""
        return len(self._alive)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def delete_fact(self, fact: Fact) -> frozenset[tuple]:
        """Propagate one source deletion; returns the view tuples that
        disappeared as a consequence."""
        if fact not in self._instance:
            raise InstanceError(f"fact {fact!r} not in the source")
        self._instance.remove(fact)
        return self._retract(fact)

    def add_fact(self, fact: Fact) -> frozenset[tuple]:
        """Propagate one source insertion (delta evaluation); returns
        the view tuples that newly appeared."""
        self._instance.add(fact)  # validates arity / primary key
        return self._delta_insert(fact)

    def delete_facts(self, facts: Iterable[Fact]) -> frozenset[tuple]:
        """Propagate a batch of deletions; returns all view tuples that
        disappeared."""
        removed: set[tuple] = set()
        for fact in facts:
            removed.update(self.delete_fact(fact))
        return frozenset(removed)

    @property
    def deleted_facts(self) -> frozenset[Fact]:
        """Facts that participated in some derivation but are gone."""
        return frozenset(self._gone)


class MaintainedViewSet:
    """One maintained view per query over a shared update stream.

    All m views observe the *same* :class:`Instance` object (one copy of
    the caller's data total, not one per view), so the set can never
    silently diverge: a deletion is applied to the shared source once
    and each view only updates its derivation index.
    """

    def __init__(self, queries: Sequence[ConjunctiveQuery], instance: Instance):
        self._instance = instance.copy()
        self._views = {
            q.name: MaintainedView(q, self._instance, share_instance=True)
            for q in queries
        }

    @property
    def instance(self) -> Instance:
        """The single shared source instance."""
        return self._instance

    def view(self, name: str) -> MaintainedView:
        return self._views[name]

    def __iter__(self):
        return iter(self._views.values())

    def delete_fact(self, fact: Fact) -> dict[str, frozenset[tuple]]:
        """Propagate one deletion to every view; returns the removals
        per view (views with no removals are omitted)."""
        if fact not in self._instance:
            raise InstanceError(f"fact {fact!r} not in the source")
        self._instance.remove(fact)
        out: dict[str, frozenset[tuple]] = {}
        for view in self._views.values():
            removed = view._retract(fact)
            if removed:
                out[view.name] = removed
        return out

    def add_fact(self, fact: Fact) -> dict[str, frozenset[tuple]]:
        """Propagate one insertion to every view; returns the additions
        per view (views with no additions are omitted)."""
        self._instance.add(fact)  # validates arity / primary key once
        out: dict[str, frozenset[tuple]] = {}
        for view in self._views.values():
            added = view._delta_insert(fact)
            if added:
                out[view.name] = added
        return out

    def delete_facts(
        self, facts: Iterable[Fact]
    ) -> dict[str, frozenset[tuple]]:
        out: dict[str, set[tuple]] = {}
        for fact in facts:
            for name, removed in self.delete_fact(fact).items():
                out.setdefault(name, set()).update(removed)
        return {name: frozenset(removed) for name, removed in out.items()}

    def total_size(self) -> int:
        return sum(len(view) for view in self._views.values())
