"""Incremental view maintenance under deletions *and* insertions.

Deletion propagation repeatedly asks "what happens to the views if
these facts change?".  Re-evaluating every query from scratch is
correct but wasteful; this module provides the classic counting-based
alternative:

* every view tuple tracks its live *derivations* (one fact per atom,
  i.e. per-atom witnesses — distinct existential bindings over the same
  facts collapse into one derivation);
* each base fact indexes the derivations it participates in, so a
  **deletion** kills the affected derivations in O(affected) time; a
  view tuple disappears exactly when its live-derivation count reaches
  zero — the same semantics the paper's condition (a)/(b) accounting
  uses;
* an **insertion** runs delta evaluation: the new derivations are the
  matches with the new fact pinned at each atom of its relation
  (:func:`repro.relational.evaluate.iter_matches_pinned`), deduplicated
  across pin positions for self-joins.

:class:`MaintainedView` is stateful (facts can be changed one at a time
and the view observed after each step, as the sequential cleaning loop
of Section V does); :class:`MaintainedViewSet` maintains one view per
query over a shared update stream.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import InstanceError
from repro.relational.cq import ConjunctiveQuery
from repro.relational.evaluate import iter_matches, iter_matches_pinned
from repro.relational.instance import Instance
from repro.relational.tuples import Fact

__all__ = ["MaintainedView", "MaintainedViewSet"]

_Derivation = tuple[tuple, tuple[Fact, ...]]  # (head, per-atom facts)


class MaintainedView:
    """A materialized view maintained incrementally under updates."""

    def __init__(self, query: ConjunctiveQuery, instance: Instance):
        self.query = query
        self.name = query.name
        self._instance = instance.copy()
        self._alive: dict[_Derivation, bool] = {}
        self._support: dict[tuple, int] = {}
        self._by_fact: dict[Fact, list[_Derivation]] = {}
        for match in iter_matches(query, self._instance):
            self._admit(match.head, match.witness)

    # ------------------------------------------------------------------
    # Internal bookkeeping
    # ------------------------------------------------------------------

    def _admit(self, head: tuple, witness: tuple[Fact, ...]) -> bool:
        """Register a derivation; returns True when the view tuple was
        absent before (i.e. this derivation makes it appear)."""
        key = (head, witness)
        if self._alive.get(key):
            return False
        appeared = self._support.get(head, 0) == 0
        self._alive[key] = True
        self._support[head] = self._support.get(head, 0) + 1
        for fact in set(witness):
            self._by_fact.setdefault(fact, []).append(key)
        return appeared

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def tuples(self) -> frozenset[tuple]:
        """The current view contents."""
        return frozenset(
            head for head, count in self._support.items() if count > 0
        )

    def support(self, head: tuple) -> int:
        """Number of live derivations of a view tuple (0 = gone)."""
        return self._support.get(tuple(head), 0)

    def __contains__(self, head: tuple) -> bool:
        return self.support(tuple(head)) > 0

    def __len__(self) -> int:
        return sum(1 for count in self._support.values() if count > 0)

    @property
    def instance(self) -> Instance:
        """The maintained view's current notion of the source data."""
        return self._instance

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def delete_fact(self, fact: Fact) -> frozenset[tuple]:
        """Propagate one source deletion; returns the view tuples that
        disappeared as a consequence."""
        if fact not in self._instance:
            raise InstanceError(f"fact {fact!r} not in the source")
        self._instance.remove(fact)
        removed: set[tuple] = set()
        for key in self._by_fact.get(fact, ()):
            if not self._alive[key]:
                continue
            self._alive[key] = False
            head, _ = key
            self._support[head] -= 1
            if self._support[head] == 0:
                removed.add(head)
        return frozenset(removed)

    def add_fact(self, fact: Fact) -> frozenset[tuple]:
        """Propagate one source insertion (delta evaluation); returns
        the view tuples that newly appeared."""
        self._instance.add(fact)  # validates arity / primary key
        appeared: set[tuple] = set()
        for atom_index, atom in enumerate(self.query.body):
            if atom.relation != fact.relation:
                continue
            for match in iter_matches_pinned(
                self.query, self._instance, atom_index, fact
            ):
                if self._admit(match.head, match.witness):
                    appeared.add(match.head)
        return frozenset(appeared)

    def delete_facts(self, facts: Iterable[Fact]) -> frozenset[tuple]:
        """Propagate a batch of deletions; returns all view tuples that
        disappeared."""
        removed: set[tuple] = set()
        for fact in facts:
            removed.update(self.delete_fact(fact))
        return frozenset(removed)

    @property
    def deleted_facts(self) -> frozenset[Fact]:
        """Facts that participated in some derivation but are gone."""
        return frozenset(
            fact for fact in self._by_fact if fact not in self._instance
        )


class MaintainedViewSet:
    """One maintained view per query over a shared update stream."""

    def __init__(self, queries: Sequence[ConjunctiveQuery], instance: Instance):
        self._views = {q.name: MaintainedView(q, instance) for q in queries}

    def view(self, name: str) -> MaintainedView:
        return self._views[name]

    def __iter__(self):
        return iter(self._views.values())

    def delete_fact(self, fact: Fact) -> dict[str, frozenset[tuple]]:
        """Propagate one deletion to every view; returns the removals
        per view (views with no removals are omitted)."""
        out: dict[str, frozenset[tuple]] = {}
        for view in self._views.values():
            removed = view.delete_fact(fact)
            if removed:
                out[view.name] = removed
        return out

    def add_fact(self, fact: Fact) -> dict[str, frozenset[tuple]]:
        """Propagate one insertion to every view; returns the additions
        per view (views with no additions are omitted)."""
        out: dict[str, frozenset[tuple]] = {}
        for view in self._views.values():
            added = view.add_fact(fact)
            if added:
                out[view.name] = added
        return out

    def delete_facts(
        self, facts: Iterable[Fact]
    ) -> dict[str, frozenset[tuple]]:
        out: dict[str, set[tuple]] = {}
        for fact in facts:
            for name, removed in self.delete_fact(fact).items():
                out.setdefault(name, set()).update(removed)
        return {name: frozenset(removed) for name, removed in out.items()}

    def total_size(self) -> int:
        return sum(len(view) for view in self._views.values())
