"""Applications of deletion propagation (paper Section V): annotation
propagation, query-oriented cleaning, and database debugging."""

from repro.apps.annotation import AnnotationPropagator, AnnotationReport
from repro.apps.cleaning import CleaningOutcome, DirtyOracle, QueryOrientedCleaner
from repro.apps.debugging import RepairSuggestion, top_k_repairs
from repro.apps.view_update import InsertionPlan, propagate_insertion

__all__ = [
    "AnnotationPropagator",
    "AnnotationReport",
    "CleaningOutcome",
    "DirtyOracle",
    "InsertionPlan",
    "QueryOrientedCleaner",
    "RepairSuggestion",
    "propagate_insertion",
    "top_k_repairs",
]
