"""Database debugging (paper Section V / [32]'s motivating task).

Given wrong tuples identified in query results, suggest alternative
source-level repairs ranked by view side-effect, so a developer can
inspect several minimal explanations rather than one arbitrary optimum.

:func:`top_k_repairs` enumerates the ``k`` cheapest *distinct* feasible
deletion sets by a branch-and-bound over witness hitting choices (the
same search as the exact solver, but keeping a bounded pool of the best
leaves instead of only the optimum).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import SolverError
from repro.relational.cq import ConjunctiveQuery
from repro.relational.instance import Instance
from repro.relational.tuples import Fact
from repro.core.problem import DeletionPropagationProblem
from repro.core.solution import Propagation

__all__ = ["top_k_repairs", "RepairSuggestion"]


class RepairSuggestion:
    """One ranked repair: the deletions plus human-readable accounting."""

    def __init__(self, rank: int, propagation: Propagation):
        self.rank = rank
        self.propagation = propagation

    @property
    def deleted_facts(self) -> frozenset[Fact]:
        return self.propagation.deleted_facts

    @property
    def side_effect(self) -> float:
        return self.propagation.side_effect()

    def explain(self) -> str:
        lost = sorted(self.propagation.collateral)
        lines = [
            f"#{self.rank}: delete {len(self.deleted_facts)} fact(s), "
            f"side-effect {self.side_effect:g}"
        ]
        for fact in sorted(self.deleted_facts):
            lines.append(f"    - {fact!r}")
        if lost:
            lines.append(f"    collateral: {', '.join(map(repr, lost[:5]))}")
        return "\n".join(lines)


def top_k_repairs(
    instance: Instance,
    queries: Sequence[ConjunctiveQuery],
    wrong_tuples: Mapping[str, Iterable[tuple]],
    k: int = 3,
    pool_limit: int = 5000,
) -> list[RepairSuggestion]:
    """The ``k`` cheapest distinct repairs for the reported wrong view
    tuples.  ``pool_limit`` bounds the number of leaves explored (the
    search is exact within the limit; an exhausted limit raises)."""
    if k < 1:
        raise SolverError("k must be positive")
    problem = DeletionPropagationProblem(instance, queries, dict(wrong_tuples))
    requirements: list[frozenset[Fact]] = []
    seen_requirements: set[frozenset[Fact]] = set()
    for vt in problem.deleted_view_tuples():
        for witness in problem.witnesses(vt):
            if witness not in seen_requirements:
                seen_requirements.add(witness)
                requirements.append(witness)
    requirements.sort(key=lambda w: (len(w), sorted(map(repr, w))))

    delta = frozenset(problem.deleted_view_tuples())
    pool: dict[frozenset[Fact], float] = {}
    visited = 0

    def cost_of(deleted: frozenset[Fact]) -> float:
        eliminated = problem.eliminated_by(deleted)
        return sum(
            problem.weight(vt) for vt in eliminated if vt not in delta
        )

    deleted: set[Fact] = set()

    def worst_kept() -> float:
        if len(pool) < k:
            return float("inf")
        return max(pool.values())

    def recurse(index: int) -> None:
        nonlocal visited
        visited += 1
        if visited > pool_limit:
            raise SolverError(
                f"repair enumeration exceeded pool limit {pool_limit}"
            )
        while index < len(requirements) and requirements[index] & deleted:
            index += 1
        cost = cost_of(frozenset(deleted))
        if cost > worst_kept():
            return
        if index == len(requirements):
            key = frozenset(deleted)
            pool[key] = cost
            if len(pool) > k:
                worst = max(pool, key=lambda s: (pool[s], len(s)))
                del pool[worst]
            return
        for fact in sorted(requirements[index]):
            deleted.add(fact)
            recurse(index + 1)
            deleted.discard(fact)

    recurse(0)
    ranked = sorted(pool.items(), key=lambda item: (item[1], len(item[0])))
    return [
        RepairSuggestion(
            rank, Propagation(problem, facts, method="debugging-topk")
        )
        for rank, (facts, _) in enumerate(ranked[:k], start=1)
    ]
