"""Query-oriented cleaning (paper Section V, "Query-oriented cleaning").

A QOCO-style loop: user queries materialize views, an oracle (crowd or
domain expert) flags wrong answers, and the cleaner translates the
flagged answers into source-tuple deletions.  The paper's point is that
**batch** processing of feedback across all queries — enabled by its
multi-query guarantees — beats the **sequential** one-query-at-a-time
processing whose outcome depends on the processing order and compounds
collateral damage.

* :class:`DirtyOracle` — ground truth: a set of dirty source facts; a
  view tuple is wrong iff some witness fact is dirty.
* :class:`QueryOrientedCleaner` — collects feedback, then cleans either
  in batch (one multi-query deletion-propagation problem) or
  sequentially (one single-query problem per view, applying deletions
  between steps).  Both report precision/recall against the dirty set
  and the collateral damage on correct view tuples (E11 compares them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.relational.cq import ConjunctiveQuery
from repro.relational.instance import Instance
from repro.relational.tuples import Fact
from repro.relational.views import ViewTuple
from repro.core.problem import DeletionPropagationProblem
from repro.core.registry import solve

__all__ = ["DirtyOracle", "CleaningOutcome", "QueryOrientedCleaner"]


class DirtyOracle:
    """Ground-truth oracle: knows which source facts are dirty."""

    def __init__(self, dirty_facts: Iterable[Fact]):
        self.dirty_facts = frozenset(dirty_facts)

    def is_wrong(
        self, problem: DeletionPropagationProblem, vt: ViewTuple
    ) -> bool:
        """A view tuple is flagged wrong when every derivation uses at
        least one dirty fact (an answer with a clean derivation is a
        correct answer)."""
        return all(
            witness & self.dirty_facts for witness in problem.witnesses(vt)
        )


@dataclass(frozen=True)
class CleaningOutcome:
    """Metrics of one cleaning run."""

    deleted_facts: frozenset[Fact]
    true_positives: int
    false_positives: int
    missed_dirty: int
    collateral_view_tuples: int
    feedback_size: int

    @property
    def precision(self) -> float:
        found = self.true_positives + self.false_positives
        return self.true_positives / found if found else 1.0

    @property
    def recall(self) -> float:
        total = self.true_positives + self.missed_dirty
        return self.true_positives / total if total else 1.0


class QueryOrientedCleaner:
    """Feedback-driven cleaner over a fixed query workload."""

    def __init__(
        self,
        instance: Instance,
        queries: Sequence[ConjunctiveQuery],
        oracle: DirtyOracle,
    ):
        self.instance = instance
        self.queries = tuple(queries)
        self.oracle = oracle

    # ------------------------------------------------------------------

    def collect_feedback(
        self, instance: Instance | None = None
    ) -> dict[str, list[tuple]]:
        """Ask the oracle about every view tuple; return the wrong ones
        per view (the ΔV of the cleaning problem)."""
        instance = instance or self.instance
        probe = DeletionPropagationProblem(instance, self.queries, {})
        feedback: dict[str, list[tuple]] = {}
        for vt in probe.all_view_tuples():
            if self.oracle.is_wrong(probe, vt):
                feedback.setdefault(vt.view, []).append(vt.values)
        return feedback

    def _outcome(
        self,
        deleted: frozenset[Fact],
        collateral: int,
        feedback_size: int,
    ) -> CleaningOutcome:
        dirty = self.oracle.dirty_facts
        return CleaningOutcome(
            deleted_facts=deleted,
            true_positives=len(deleted & dirty),
            false_positives=len(deleted - dirty),
            missed_dirty=len(dirty - deleted),
            collateral_view_tuples=collateral,
            feedback_size=feedback_size,
        )

    def clean_batch(self, method: str = "auto") -> CleaningOutcome:
        """One multi-query problem over all feedback at once."""
        feedback = self.collect_feedback()
        size = sum(len(v) for v in feedback.values())
        if not feedback:
            return self._outcome(frozenset(), 0, 0)
        problem = DeletionPropagationProblem(
            self.instance, self.queries, feedback
        )
        solution = solve(problem, method=method)
        return self._outcome(
            solution.deleted_facts, len(solution.collateral), size
        )

    def clean_iteratively(
        self, max_rounds: int = 5, method: str = "auto"
    ) -> tuple[CleaningOutcome, int]:
        """Interactive loop: batch-clean, apply, re-ask the oracle, and
        repeat until no feedback remains (or ``max_rounds``).  Returns
        the cumulative outcome and the number of rounds used.

        A single batch round can miss dirt that only becomes visible
        once other wrong answers are gone (for projecting queries, a
        wrong answer may be masked by a clean alternative derivation);
        the loop converges because the instance strictly shrinks."""
        current = self.instance.copy()
        deleted: set[Fact] = set()
        collateral = 0
        feedback_size = 0
        rounds = 0
        for _ in range(max_rounds):
            feedback = self.collect_feedback(current)
            if not feedback:
                break
            rounds += 1
            feedback_size += sum(len(v) for v in feedback.values())
            problem = DeletionPropagationProblem(
                current, self.queries, feedback
            )
            solution = solve(problem, method=method)
            collateral += len(solution.collateral)
            deleted.update(solution.deleted_facts)
            current = current.without(solution.deleted_facts)
        outcome = self._outcome(
            frozenset(deleted), collateral, feedback_size
        )
        return outcome, rounds

    def clean_sequential(self, method: str = "auto") -> CleaningOutcome:
        """QOCO-style: process one view's feedback at a time, applying
        the deletions before moving to the next view.  Order-dependent
        (views are processed in name order) and unaware of cross-view
        evidence."""
        current = self.instance.copy()
        deleted: set[Fact] = set()
        collateral = 0
        feedback_size = 0
        for query in sorted(self.queries, key=lambda q: q.name):
            feedback = self.collect_feedback(current)
            wrong_here = feedback.get(query.name)
            if not wrong_here:
                continue
            feedback_size += len(wrong_here)
            problem = DeletionPropagationProblem(
                current, [query], {query.name: wrong_here}
            )
            solution = solve(problem, method=method)
            collateral += len(solution.collateral)
            deleted.update(solution.deleted_facts)
            current = current.without(solution.deleted_facts)
        return self._outcome(frozenset(deleted), collateral, feedback_size)
