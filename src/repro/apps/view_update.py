"""Insertion propagation — the other direction of view update.

The paper's related-work section traces deletion propagation back to
the classical view-update problem (Bancilhon–Spyratos, Dayal–Bernstein,
Keller): translate a view-level change into source changes with minimal
ambiguity and side-effect.  This module handles the *insertion* side
for key-preserving queries, complementing the deletion machinery of
:mod:`repro.core`:

To make a tuple ``t`` appear in view ``Q(D)``:

1. bind the head variables of ``Q`` from ``t`` (constants must match);
2. **unify with the existing data**: key preservation makes every
   atom's key fully bound, so each atom either finds its unique
   existing fact (whose values then bind the atom's existential
   variables — bindings cascade through shared variables until a
   fixpoint) or must be newly created;
3. existential variables still unbound after unification get fresh
   *labeled nulls* (shared variables share their null — a chase step);
   the required source facts are the instantiated atoms.  A required
   fact that contradicts an existing fact on a *bound* position is a
   **conflict** (the insertion would need an update, which
   deletion/insertion semantics does not allow);
4. the **side-effect** is every other view tuple (across all views)
   that the new facts create, computed by delta evaluation.

The result is an :class:`InsertionPlan` the caller can inspect and
apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ViewError
from repro.relational.cq import ConjunctiveQuery, Constant, Variable
from repro.relational.instance import Instance
from repro.relational.maintenance import MaintainedViewSet
from repro.relational.tuples import Fact
from repro.relational.views import ViewTuple

__all__ = ["InsertionPlan", "propagate_insertion"]


@dataclass(frozen=True)
class InsertionPlan:
    """The outcome of planning one view-tuple insertion."""

    view: str
    values: tuple
    new_facts: tuple[Fact, ...]
    reused_facts: tuple[Fact, ...]
    conflicts: tuple[tuple[Fact, Fact], ...]  # (required, existing)
    side_effects: tuple[ViewTuple, ...] = field(default=())

    @property
    def feasible(self) -> bool:
        """Insertable without updating existing facts?"""
        return not self.conflicts

    def apply(self, instance: Instance) -> Instance:
        """A new instance with the plan's facts inserted."""
        if not self.feasible:
            raise ViewError(
                f"insertion of {self.values!r} into {self.view!r} "
                f"conflicts with existing facts: {self.conflicts[:2]!r}"
            )
        out = instance.copy()
        for fact in self.new_facts:
            out.add(fact)
        return out


def _bind_head(
    query: ConjunctiveQuery, values: tuple
) -> dict[Variable, object]:
    if len(values) != query.arity:
        raise ViewError(
            f"tuple of width {len(values)} does not fit view "
            f"{query.name!r} of width {query.arity}"
        )
    assignment: dict[Variable, object] = {}
    for term, value in zip(query.head, values):
        if isinstance(term, Constant):
            if term.value != value:
                raise ViewError(
                    f"head constant {term.value!r} cannot take value "
                    f"{value!r}"
                )
            continue
        bound = assignment.get(term)
        if bound is None:
            assignment[term] = value
        elif bound != value:
            raise ViewError(
                f"head variable {term!r} bound inconsistently: "
                f"{bound!r} vs {value!r}"
            )
    return assignment


def propagate_insertion(
    instance: Instance,
    queries: Sequence[ConjunctiveQuery],
    view_name: str,
    values: tuple,
    null_prefix: str = "@null",
) -> InsertionPlan:
    """Plan the insertion of ``values`` into view ``view_name``.

    ``queries`` is the full workload: side-effects are reported across
    *all* its views, mirroring the multi-view focus of the paper.
    Requires the target query to be key preserving (otherwise the key
    values of the required facts are not determined by the head).
    """
    query_by_name = {q.name: q for q in queries}
    query = query_by_name.get(view_name)
    if query is None:
        raise ViewError(f"unknown view {view_name!r}")
    if not query.is_key_preserving():
        raise ViewError(
            f"view {view_name!r} is not key preserving; the required "
            "source facts are not determined by the head"
        )
    values = tuple(values)
    assignment = _bind_head(query, values)
    conflicts: list[tuple[Fact, Fact]] = []

    def realize(atom) -> Fact:
        row = []
        for term in atom.terms:
            if isinstance(term, Constant):
                row.append(term.value)
            else:
                row.append(assignment.get(term))
        return Fact(atom.relation, row)

    def existing_for(atom) -> Fact | None:
        schema = instance.schema.relation(atom.relation)
        key_values = []
        for position in schema.key:
            term = atom.terms[position]
            value = (
                term.value
                if isinstance(term, Constant)
                else assignment.get(term)
            )
            if value is None:
                return None  # key not yet bound (cannot happen for kp)
            key_values.append(value)
        return instance.lookup_by_key(atom.relation, tuple(key_values))

    # Unification fixpoint: existing facts bind existential variables,
    # possibly enabling key lookups of other atoms via shared variables.
    changed = True
    while changed:
        changed = False
        for atom in query.body:
            existing = existing_for(atom)
            if existing is None:
                continue
            for term, value in zip(atom.terms, existing.values):
                if isinstance(term, Constant):
                    if term.value != value:
                        conflicts.append((realize(atom), existing))
                    continue
                bound = assignment.get(term)
                if bound is None:
                    assignment[term] = value
                    changed = True
                elif bound != value:
                    conflicts.append((realize(atom), existing))
        if conflicts:
            break

    for index, var in enumerate(sorted(query.existential_variables())):
        if assignment.get(var) is None:
            assignment[var] = (
                f"{null_prefix}:{query.name}:{index}:{var.name}"
            )

    new_facts: list[Fact] = []
    reused: list[Fact] = []
    seen: set[Fact] = set()
    if not conflicts:
        for atom in query.body:
            fact = realize(atom)
            if fact in seen:
                continue
            seen.add(fact)
            schema = instance.schema.relation(fact.relation)
            existing = instance.lookup_by_key(
                fact.relation, fact.key_values(schema)
            )
            if existing is None:
                new_facts.append(fact)
            elif existing == fact:
                reused.append(existing)
            else:
                conflicts.append((fact, existing))

    side_effects: list[ViewTuple] = []
    if not conflicts and new_facts:
        views = MaintainedViewSet(queries, instance)
        appeared: dict[str, set[tuple]] = {}
        for fact in new_facts:
            for name, added in views.add_fact(fact).items():
                appeared.setdefault(name, set()).update(added)
        for name, tuples in appeared.items():
            for added in tuples:
                if name == view_name and added == values:
                    continue
                side_effects.append(ViewTuple(name, added))
    return InsertionPlan(
        view=view_name,
        values=values,
        new_facts=tuple(new_facts),
        reused_facts=tuple(reused),
        conflicts=tuple(conflicts),
        side_effects=tuple(sorted(side_effects)),
    )
