"""Data annotation propagation (paper Section V, "Data annotation").

Errors are reported on view tuples; the errors were *produced* by source
facts, so annotations should be propagated back to candidate facts.  The
paper's observation: with one query there are usually many optimal
candidates, but merging the deletions specified on the results of
multiple queries shrinks the candidate set — "the more queries and
views, the closer we approach the side-effect free solution".

:class:`AnnotationPropagator` implements exactly that workflow:

* per reported error, the candidate facts are its witness facts;
* a fact's **suspicion score** counts the distinct reported errors it
  explains (appears in the witness of);
* :meth:`AnnotationPropagator.candidates` merges evidence across any
  subset of the views, demonstrating the shrinkage (bench E11);
* :meth:`AnnotationPropagator.suggest` computes a minimum-side-effect
  deletion suggestion for the merged evidence via the core solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import ProblemError
from repro.relational.cq import ConjunctiveQuery
from repro.relational.instance import Instance
from repro.relational.tuples import Fact
from repro.core.problem import DeletionPropagationProblem
from repro.core.registry import solve
from repro.core.solution import Propagation

__all__ = ["AnnotationPropagator", "AnnotationReport"]


@dataclass(frozen=True)
class AnnotationReport:
    """Result of propagating error annotations to the source."""

    candidates: frozenset[Fact]
    suspicion: Mapping[Fact, int]
    suggestion: Propagation

    def ranked_candidates(self) -> list[tuple[Fact, int]]:
        """Candidates by decreasing suspicion (ties by fact order)."""
        return sorted(
            self.suspicion.items(), key=lambda item: (-item[1], item[0])
        )


class AnnotationPropagator:
    """Propagates error annotations on views back to source facts."""

    def __init__(
        self, instance: Instance, queries: Sequence[ConjunctiveQuery]
    ):
        self.instance = instance
        self.queries = tuple(queries)
        if not self.queries:
            raise ProblemError("at least one query is required")

    def _problem(
        self, errors: Mapping[str, Iterable[tuple]]
    ) -> DeletionPropagationProblem:
        return DeletionPropagationProblem(
            self.instance, self.queries, dict(errors)
        )

    def candidates(
        self, errors: Mapping[str, Iterable[tuple]]
    ) -> dict[Fact, int]:
        """Suspicion scores for the union of witness facts of all
        reported errors: fact -> number of distinct errors explained."""
        problem = self._problem(errors)
        scores: dict[Fact, int] = {}
        for vt in problem.deleted_view_tuples():
            for witness in problem.witnesses(vt):
                for fact in witness:
                    scores[fact] = scores.get(fact, 0) + 1
        return scores

    def propagate(
        self, errors: Mapping[str, Iterable[tuple]], method: str = "auto"
    ) -> AnnotationReport:
        """Full propagation: candidates, scores, and a minimum
        side-effect deletion suggestion."""
        problem = self._problem(errors)
        scores = self.candidates(errors)
        suggestion = solve(problem, method=method)
        return AnnotationReport(
            candidates=frozenset(scores),
            suspicion=scores,
            suggestion=suggestion,
        )

    def annotate_cells(
        self,
        cell_annotations: Mapping[str, Mapping[tuple, Mapping[int, object]]],
    ) -> dict:
        """Cell-level propagation via where-provenance.

        ``cell_annotations`` maps view name → view tuple →
        ``{head position: annotation}``; the result maps source
        :class:`~repro.relational.where_provenance.Cell` objects to the
        annotations that reach them.  Annotations arriving through
        several views accumulate on the same cell — the multi-view
        merging of Section V at cell granularity.
        """
        from repro.relational.where_provenance import annotate_cells

        merged: dict = {}
        query_by_name = {q.name: q for q in self.queries}
        for view_name, annotations in cell_annotations.items():
            query = query_by_name.get(view_name)
            if query is None:
                raise ProblemError(f"unknown view {view_name!r}")
            for cell, notes in annotate_cells(
                query, self.instance, annotations
            ).items():
                merged.setdefault(cell, set()).update(notes)
        return merged

    def shrinkage_curve(
        self, errors: Mapping[str, Iterable[tuple]]
    ) -> list[tuple[int, int]]:
        """Candidate-set size as evidence accumulates view by view:
        returns ``[(views_used, strongest_candidate_count)]`` where the
        strongest candidates are those with maximal suspicion so far.
        Demonstrates the paper's shrinkage claim (E11)."""
        out: list[tuple[int, int]] = []
        accumulated: dict[str, list[tuple]] = {}
        for i, (view, tuples) in enumerate(sorted(errors.items()), start=1):
            accumulated[view] = list(tuples)
            scores = self.candidates(accumulated)
            if scores:
                top = max(scores.values())
                strongest = sum(1 for s in scores.values() if s == top)
            else:
                strongest = 0
            out.append((i, strongest))
        return out
