#!/usr/bin/env python3
"""Annotation propagation and database debugging (paper Section V).

Part 1 — annotation: an error is reported on one view; the candidate
source facts are broad.  A second view reporting the same underlying
error shrinks the strongest candidates, exactly the paper's motivation
for the multi-view setting.

Part 2 — debugging: enumerate the top-k cheapest repairs for a wrong
answer and print human-readable explanations.

Run:  python examples/annotation_debugging.py
"""

from repro.apps import AnnotationPropagator, top_k_repairs
from repro.workloads import figure1_instance, figure1_queries, figure1_schema


def main() -> None:
    schema = figure1_schema()
    instance = figure1_instance(schema)
    q3, q4 = figure1_queries(schema)

    # ------------------------------------------------------------------
    # Part 1: annotation propagation with accumulating evidence.
    # ------------------------------------------------------------------
    propagator = AnnotationPropagator(instance, [q3, q4])

    print("evidence from Q3 alone — error (John, XML):")
    single = propagator.candidates({"Q3": [("John", "XML")]})
    for fact, score in sorted(single.items(), key=lambda kv: -kv[1]):
        print(f"  suspicion {score}: {fact!r}")

    print("\nadding Q4's evidence — errors (John, *, XML):")
    report = propagator.propagate(
        {
            "Q3": [("John", "XML")],
            "Q4": [("John", "TKDE", "XML"), ("John", "TODS", "XML")],
        }
    )
    for fact, score in report.ranked_candidates():
        print(f"  suspicion {score}: {fact!r}")
    top_fact, top_score = report.ranked_candidates()[0]
    print(f"\nstrongest candidate: {top_fact!r} (explains {top_score} errors)")
    print(f"suggested deletion: {report.suggestion.summary()}")

    # ------------------------------------------------------------------
    # Part 2: top-k repair suggestions for debugging.
    # ------------------------------------------------------------------
    print("\ntop-3 repairs for the wrong Q3 answer (John, XML):")
    repairs = top_k_repairs(
        instance, [q3], {"Q3": [("John", "XML")]}, k=3
    )
    for suggestion in repairs:
        print(suggestion.explain())

    best = repairs[0]
    assert best.side_effect == 1.0  # the paper's worked minimum


if __name__ == "__main__":
    main()
