#!/usr/bin/env python3
"""View update both ways: deletion AND insertion propagation.

The deletion direction is the paper's core problem; the insertion
direction is the classical view-update setting its related work starts
from.  This example runs both over the Fig. 1 bibliography:

1. delete a wrong answer from a view at minimum side-effect;
2. insert a missing answer into a view, unifying with existing data and
   reporting the view tuples the insertion creates elsewhere.

Run:  python examples/view_update.py
"""

from repro.apps import propagate_insertion
from repro.core import solve
from repro.core.problem import DeletionPropagationProblem
from repro.relational import render_relation
from repro.workloads import figure1_instance, figure1_queries, figure1_schema


def main() -> None:
    schema = figure1_schema()
    instance = figure1_instance(schema)
    q3, q4 = figure1_queries(schema)
    queries = [q3, q4]

    print(render_relation(instance, "T1"))
    print()
    print(render_relation(instance, "T2"))

    # ------------------------------------------------------------------
    # Deletion direction: remove (John, TODS, XML) from Q4.
    # ------------------------------------------------------------------
    problem = DeletionPropagationProblem(
        instance, queries, {"Q4": [("John", "TODS", "XML")]}
    )
    solution = solve(problem)
    print(f"\nDELETE (John, TODS, XML) from Q4 -> {solution.summary()}")
    for fact in sorted(solution.deleted_facts):
        print(f"  - {fact!r}")

    # ------------------------------------------------------------------
    # Insertion direction: Ada published in TODS; add her XML answer.
    # ------------------------------------------------------------------
    plan = propagate_insertion(instance, queries, "Q4", ("Ada", "TODS", "XML"))
    print(f"\nINSERT (Ada, TODS, XML) into Q4 -> "
          f"{'feasible' if plan.feasible else 'conflicts'}")
    for fact in plan.new_facts:
        print(f"  + {fact!r}")
    for fact in plan.reused_facts:
        print(f"  = {fact!r} (reused)")
    print("  side-effects on other views:")
    for vt in plan.side_effects:
        print(f"    -> {vt!r}")

    updated = plan.apply(instance)
    print(f"\nsource grew from {len(instance)} to {len(updated)} facts")

    # A conflicting insertion: Q4 unifies the Papers column with the
    # existing (TKDE, XML, 30) fact, so this one stays feasible — but a
    # contradictory shared binding is refused:
    from repro.relational import Instance, parse_queries

    wq = parse_queries(["W(x, y) :- A(x, w), B(y, w)"])
    winst = Instance.from_rows(
        wq[0].schema, {"A": [("a0", 1)], "B": [("b0", 2)]}
    )
    bad = propagate_insertion(winst, wq, "W", ("a0", "b0"))
    print(f"\nINSERT (a0, b0) into W(x,y) :- A(x,w), B(y,w) -> "
          f"{'feasible' if bad.feasible else 'CONFLICT'}")
    for required, existing in bad.conflicts:
        print(f"  ! needs {required!r} but {existing!r} exists")


if __name__ == "__main__":
    main()
