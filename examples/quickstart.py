#!/usr/bin/env python3
"""Quickstart: the paper's Fig. 1 example, end to end.

Builds the bibliographic database, materializes the two views, requests
the deletion of a wrong answer, and asks the library for a
minimum-side-effect way to realize it in the source tables.

Run:  python examples/quickstart.py
"""

from repro import DeletionPropagationProblem, solve
from repro.core import solve_exact, verdict, verify_solution
from repro.relational import Instance, parse_queries
from repro.workloads import figure1_schema


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Schema and source data (Fig. 1a–b).  Keys are declared on the
    #    relations: T1's key spans both columns, T2's spans the first two.
    # ------------------------------------------------------------------
    schema = figure1_schema()
    database = Instance.from_rows(
        schema,
        {
            "T1": [
                ("Joe", "TKDE"),
                ("John", "TKDE"),
                ("Tom", "TKDE"),
                ("John", "TODS"),
            ],
            "T2": [
                ("TKDE", "XML", 30),
                ("TKDE", "CUBE", 30),
                ("TODS", "XML", 30),
            ],
        },
    )

    # ------------------------------------------------------------------
    # 2. Views (Fig. 1c–d): Q3 projects the journal away (NOT key
    #    preserving), Q4 keeps every key variable in the head.
    # ------------------------------------------------------------------
    q3, q4 = parse_queries(
        [
            "Q3(x, z) :- T1(x, y), T2(y, z, w)",
            "Q4(x, y, z) :- T1(x, y), T2(y, z, w)",
        ],
        schema,
    )
    print("query classes:")
    print(f"  Q3 key-preserving: {q3.is_key_preserving()}")
    print(f"  Q4 key-preserving: {q4.is_key_preserving()}")

    # ------------------------------------------------------------------
    # 3. John does no XML research — delete (John, XML) from Q3(D).
    # ------------------------------------------------------------------
    problem = DeletionPropagationProblem(
        database, [q3], {"Q3": [("John", "XML")]}
    )
    print(f"\nproblem: {problem!r}")

    solution = solve(problem)  # structure-aware dispatch
    print(f"\nsolution: {solution.summary()}")
    for fact in sorted(solution.deleted_facts):
        print(f"  delete {fact!r}")
    print(f"  collateral view tuples: {sorted(solution.collateral)}")

    # The exact optimum agrees (side-effect 1, as the paper works out),
    # and two independent backends confirm the suggested deletion.
    optimum = solve_exact(problem)
    assert optimum.side_effect() == solution.side_effect() == 1.0
    for backend in ("engine", "sqlite"):
        report = verify_solution(solution, backend)
        assert report.consistent and report.feasible, report.mismatches
    print("\nverified on both the join engine and SQLite")

    # ------------------------------------------------------------------
    # 4. The key-preserving Q4 deletion is a single witness lookup.
    # ------------------------------------------------------------------
    problem4 = DeletionPropagationProblem(
        database, [q4], {"Q4": [("John", "TKDE", "XML")]}
    )
    solution4 = solve(problem4)
    print(f"\nQ4 deletion: {solution4.summary()}")
    assert len(solution4.deleted_facts) == 1

    # ------------------------------------------------------------------
    # 5. Where do these inputs sit in the complexity landscape?
    # ------------------------------------------------------------------
    print("\ncomplexity landscape rows that apply to {Q3}:")
    for row in verdict([q3]):
        print(f"  [{row.table}] {row.complexity:12s} — {row.query_class}")


if __name__ == "__main__":
    main()
