#!/usr/bin/env python3
"""Tour of the paper's four algorithms on structured workloads.

Generates one instance per structural class and runs every applicable
algorithm, printing measured cost against the exact optimum and the
proven bound:

* chain (pivot forest)  — Algorithm 4 (exact DP), Algorithms 1 & 3;
* star  (forest)        — Algorithms 1 & 3 (DP refuses: no pivot);
* triangle (general)    — Claim 1 RBSC pipeline only.

Run:  python examples/forest_algorithms.py
"""

import random

from repro.core import (
    claim1_bound,
    solve_dp_tree,
    solve_exact,
    solve_general,
    solve_lowdeg_tree_sweep,
    solve_primal_dual,
    theorem4_bound,
)
from repro.core.dp_tree import applies_to
from repro.errors import StructureError
from repro.workloads import (
    random_chain_problem,
    random_star_problem,
    random_triangle_problem,
)


def show(name: str, solution, optimum: float, bound: float | None) -> None:
    ratio = solution.side_effect() / optimum if optimum else 1.0
    bound_text = f" (bound {bound:.2f})" if bound is not None else ""
    print(
        f"  {name:24s} side-effect {solution.side_effect():5.1f}  "
        f"ratio {ratio:4.2f}{bound_text}"
    )


def main() -> None:
    rng = random.Random(42)

    # ------------------------------------------------------------------
    print("chain workload (forest case WITH pivot tuples)")
    chain = random_chain_problem(
        rng, num_relations=4, facts_per_relation=8, num_queries=4
    )
    print(f"  {chain!r}; pivot structure: {applies_to(chain)}")
    optimum = solve_exact(chain).side_effect()
    print(f"  exact optimum: {optimum:g}")
    show("DPTreeVSE (Alg 4)", solve_dp_tree(chain), optimum, None)
    show("PrimeDualVSE (Alg 1)", solve_primal_dual(chain), optimum,
         float(chain.max_arity))
    show("LowDegTreeVSETwo (Alg 3)", solve_lowdeg_tree_sweep(chain),
         optimum, theorem4_bound(chain))

    # ------------------------------------------------------------------
    print("\nstar workload (forest case WITHOUT pivot tuples)")
    star = random_star_problem(
        rng, num_leaves=3, center_facts=4, leaf_facts=6, num_queries=3,
        max_leaves_per_query=3,
    )
    print(f"  {star!r}; pivot structure: {applies_to(star)}")
    optimum = solve_exact(star).side_effect()
    print(f"  exact optimum: {optimum:g}")
    if not applies_to(star):
        try:
            solve_dp_tree(star)
        except StructureError as exc:
            print(f"  DPTreeVSE refuses: {exc}")
    show("PrimeDualVSE (Alg 1)", solve_primal_dual(star), optimum,
         float(star.max_arity))
    show("LowDegTreeVSETwo (Alg 3)", solve_lowdeg_tree_sweep(star),
         optimum, theorem4_bound(star))

    # ------------------------------------------------------------------
    print("\ntriangle workload (general case — Fig. 3 Q1 shape)")
    triangle = random_triangle_problem(rng, center_facts=4, leaf_facts=6)
    print(f"  {triangle!r}; forest case: {triangle.is_forest_case()}")
    optimum = solve_exact(triangle).side_effect()
    print(f"  exact optimum: {optimum:g}")
    show("Claim 1 pipeline", solve_general(triangle), optimum,
         claim1_bound(triangle))


if __name__ == "__main__":
    main()
