#!/usr/bin/env python3
"""Query-oriented data cleaning (paper Section V).

Scenario: a product catalog with injected dirty rows.  Analysts run
three overlapping queries; a domain-expert oracle flags wrong answers.
The cleaner translates the flagged answers back into source deletions —
once processing all feedback as a single multi-query batch (this
paper's setting) and once view-by-view (QOCO-style sequential).

Run:  python examples/query_oriented_cleaning.py
"""

import random

from repro.apps import DirtyOracle, QueryOrientedCleaner
from repro.relational import Fact, Instance, Key, RelationSchema, Schema, parse_queries


def build_catalog(rng: random.Random) -> tuple[Instance, list]:
    schema = Schema(
        [
            RelationSchema("Supplier", ("sid", "region"), Key((0,))),
            RelationSchema("Product", ("pid", "sid"), Key((0,))),
            RelationSchema("Listing", ("lid", "pid"), Key((0,))),
        ]
    )
    instance = Instance(schema)
    for s in range(4):
        instance.add(Fact("Supplier", (f"s{s}", f"region{s % 2}")))
    for p in range(10):
        instance.add(Fact("Product", (f"p{p}", f"s{rng.randrange(4)}")))
    for l in range(14):
        instance.add(Fact("Listing", (f"l{l}", f"p{rng.randrange(10)}")))
    queries = parse_queries(
        [
            # all project-free, hence key-preserving
            "BySupplier(p, s, r) :- Product(p, s), Supplier(s, r)",
            "ByListing(l, p, s) :- Listing(l, p), Product(p, s)",
            "Full(l, p, s, r) :- Listing(l, p), Product(p, s), Supplier(s, r)",
        ],
        schema,
    )
    return instance, queries


def main() -> None:
    rng = random.Random(2019)
    instance, queries = build_catalog(rng)

    # Inject ground truth: three dirty source rows.
    facts = sorted(instance.facts())
    dirty = rng.sample(facts, 3)
    print("ground-truth dirty facts:")
    for fact in dirty:
        print(f"  {fact!r}")
    oracle = DirtyOracle(dirty)

    cleaner = QueryOrientedCleaner(instance, queries, oracle)
    feedback = cleaner.collect_feedback()
    total = sum(len(v) for v in feedback.values())
    print(f"\noracle flagged {total} wrong view tuples across "
          f"{len(feedback)} views")

    batch = cleaner.clean_batch()
    sequential = cleaner.clean_sequential()

    print("\n                    batch    sequential")
    print(f"deleted facts     {len(batch.deleted_facts):7d} {len(sequential.deleted_facts):11d}")
    print(f"precision         {batch.precision:7.2f} {sequential.precision:11.2f}")
    print(f"recall            {batch.recall:7.2f} {sequential.recall:11.2f}")
    print(f"collateral tuples {batch.collateral_view_tuples:7d} "
          f"{sequential.collateral_view_tuples:11d}")

    assert batch.collateral_view_tuples <= sequential.collateral_view_tuples, (
        "batch processing should not lose more correct answers"
    )
    print("\nbatch processing caused no more collateral damage than the "
          "order-dependent sequential loop — the multi-query guarantee "
          "the paper provides.")


if __name__ == "__main__":
    main()
