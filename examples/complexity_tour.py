#!/usr/bin/env python3
"""Tour of the complexity landscape (paper Tables II–V).

Classifies a gallery of conjunctive queries with the machine-checkable
predicates behind the paper's complexity tables — project/self-join
freedom, key preservation, head domination, triads, hierarchy, and
their FD-relativized variants — and prints, per query, the landscape
rows that apply.

Run:  python examples/complexity_tour.py
"""

from repro.core.classify import classification_flags, verdict
from repro.relational import FunctionalDependency, parse_query, render_queries

GALLERY = [
    ("select-join (project-free)",
     "Qa(x, y, z) :- T1(x, y), T2(y, z)", []),
    ("key-preserving with projection",
     "Qb(y1, y2, w) :- T1(y1, x), T2(y2, w)", []),
    ("non-key-preserving (key projected away)",
     "Qc(z) :- T1(y, z), T2(z, w)", []),
    ("the paper's §IV.B example: key-preserving, no head domination",
     "Qd(y1, y2) :- T1(y1, x), T2(x, y2)", []),
    ("same query, rescued by the FD T2.b → T2.a",
     "Qd(y1, y2) :- T1(y1, x), T2(x, y2)",
     [FunctionalDependency("T2", lhs=[1], rhs=[0])]),
    ("triangle (has a triad — hard resilience)",
     "Qe(x, y, z) :- R(x, y), S(y, z), T(z, x)", []),
    ("chain (triad-free, hierarchical-free join)",
     "Qf(x, z) :- R(x, y), S(y, z)", []),
]


def main() -> None:
    for title, text, fds in GALLERY:
        query = parse_query(text)
        print("=" * 70)
        print(title)
        print(render_queries([query]))
        if fds:
            print(f"  with FDs: {fds}")
        flags = classification_flags([query], fds)
        interesting = {k: v for k, v in sorted(flags.items())
                       if k != "multiple_queries"}
        print("  flags: " + ", ".join(
            f"{name}={value}" for name, value in interesting.items()
        ))
        rows = verdict([query], fds)
        if rows:
            print("  landscape rows:")
            for row in rows:
                print(f"    [{row.table}] {row.complexity} — "
                      f"{row.query_class} ({row.citation})")
        else:
            print("  landscape rows: none of the predicate-bearing rows")
        print()

    # The multi-query punchline of the paper:
    q1 = parse_query("Qa(x, y, z) :- T1(x, y), T2(y, z)")
    q2 = parse_query("Qh(u, v, w) :- T1(u, v), T2(v, w)")
    print("=" * 70)
    print("TWO project-free queries together (the paper's Theorem 1 class):")
    for row in verdict([q1, q2]):
        if row.table == "paper":
            print(f"  {row.complexity}")


if __name__ == "__main__":
    main()
